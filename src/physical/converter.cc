#include "src/physical/converter.h"

#include <algorithm>
#include <functional>
#include <set>
#include <stdexcept>

namespace gopt {

namespace {

bool HasCol(const std::vector<std::string>& cols, const std::string& c) {
  return std::find(cols.begin(), cols.end(), c) != cols.end();
}

bool IsInternal(const std::string& alias) {
  return alias.empty() || alias[0] == '$';
}

}  // namespace

namespace {

/// Physical cleanup: collapses Project-over-Project chains of pure column
/// renames and removes identity projections, so per-operator materialization
/// does not pay for redundant row copies (FieldTrim + RETURN frequently
/// stack two projections).
PhysOpPtr CollapseProjects(PhysOpPtr op, std::map<const PhysOp*, PhysOpPtr>* done) {
  auto it = done->find(op.get());
  if (it != done->end()) return it->second;
  auto cur = std::make_shared<PhysOp>(*op);
  for (auto& c : cur->children) c = CollapseProjects(c, done);

  auto is_rename_only = [](const PhysOp& p) {
    if (p.kind != PhysOpKind::kProject || p.append) return false;
    for (const auto& item : p.items) {
      if (item.expr->kind != Expr::Kind::kVar) return false;
    }
    return true;
  };
  if (cur->kind == PhysOpKind::kProject && !cur->append &&
      !cur->children.empty() && is_rename_only(*cur->children[0])) {
    // Rewire outer expressions through the inner rename map.
    const PhysOp& inner = *cur->children[0];
    std::map<std::string, std::string> rename;
    for (const auto& item : inner.items) rename[item.alias] = item.expr->tag;
    std::function<ExprPtr(const ExprPtr&)> rewrite =
        [&](const ExprPtr& e) -> ExprPtr {
      if (!e) return e;
      auto copy = std::make_shared<Expr>(*e);
      if ((copy->kind == Expr::Kind::kVar ||
           copy->kind == Expr::Kind::kProperty) &&
          rename.count(copy->tag)) {
        copy->tag = rename[copy->tag];
      }
      for (auto& a : copy->args) a = rewrite(a);
      return copy;
    };
    for (auto& item : cur->items) item.expr = rewrite(item.expr);
    cur->children = inner.children;
  }
  // Identity projection: same columns, same order, pure Vars.
  if (is_rename_only(*cur) && !cur->children.empty()) {
    bool identity = cur->out_cols == cur->children[0]->out_cols;
    if (identity) {
      for (size_t i = 0; i < cur->items.size(); ++i) {
        if (cur->items[i].expr->tag != cur->out_cols[i] ||
            cur->items[i].alias != cur->out_cols[i]) {
          identity = false;
          break;
        }
      }
    }
    if (identity) {
      auto child = cur->children[0];
      (*done)[op.get()] = child;
      return child;
    }
  }
  (*done)[op.get()] = cur;
  return cur;
}

}  // namespace

PhysOpPtr PhysicalConverter::Convert(
    const LogicalOpPtr& root,
    const std::map<const LogicalOp*, PatternPlanPtr>& pattern_plans) {
  shared_.clear();
  PhysOpPtr phys = ConvertNode(root, pattern_plans);
  std::map<const PhysOp*, PhysOpPtr> done;
  return CollapseProjects(phys, &done);
}

PhysOpPtr PhysicalConverter::MakeEdgeStep(const Pattern& pat,
                                          const PatternEdge& e, PhysOpPtr input,
                                          bool bind_edge) {
  const PatternVertex& sv = pat.VertexById(e.src);
  const PatternVertex& dv = pat.VertexById(e.dst);
  bool src_bound = HasCol(input->out_cols, sv.alias);
  bool dst_bound = HasCol(input->out_cols, dv.alias);
  if (!src_bound && !dst_bound) {
    throw std::runtime_error("MakeEdgeStep: neither endpoint bound");
  }
  const PatternVertex* from = src_bound ? &sv : &dv;
  const PatternVertex* to = src_bound ? &dv : &sv;
  bool closing = src_bound && dst_bound;

  Direction step_dir;
  if (e.dir == Direction::kBoth) {
    step_dir = Direction::kBoth;
  } else {
    step_dir = (from == &sv) ? Direction::kOut : Direction::kIn;
  }

  auto op = std::make_shared<PhysOp>(e.IsPath() ? PhysOpKind::kPathExpand
                                                : PhysOpKind::kExpandEdge);
  op->children = {input};
  op->from_tag = from->alias;
  op->dir = step_dir;
  op->etc_ = e.tc;
  op->edge_preds = e.predicates;
  op->alias = to->alias;
  op->vtc = to->tc;
  if (!closing) op->vertex_preds = to->predicates;
  op->target_bound = closing;
  op->out_cols = input->out_cols;
  if (!closing) op->out_cols.push_back(to->alias);
  if (e.IsPath()) {
    op->min_hops = e.min_hops;
    op->max_hops = e.max_hops;
    op->semantics = e.semantics;
    if (bind_edge) {
      op->path_alias = e.alias;
      op->out_cols.push_back(e.alias);
    }
  } else if (bind_edge) {
    op->edge_alias = e.alias;
    op->out_cols.push_back(e.alias);
  }
  return op;
}

PhysOpPtr PhysicalConverter::ConvertPlanRec(const Pattern& full,
                                            const PatternPlanPtr& node,
                                            bool bind_all_edges) {
  switch (node->kind) {
    case PatternPlanNode::Kind::kScan: {
      const PatternVertex& v = full.VertexById(node->scan_vertex);
      auto op = std::make_shared<PhysOp>(PhysOpKind::kScanVertices);
      op->alias = v.alias;
      op->vtc = v.tc;
      op->vertex_preds = v.predicates;
      op->out_cols = {v.alias};
      op->est_rows = node->freq;
      return op;
    }
    case PatternPlanNode::Kind::kExpand: {
      PhysOpPtr in = ConvertPlanRec(full, node->child, bind_all_edges);
      auto needs_binding = [&](const PatternEdge& e) {
        if (bind_all_edges) return true;
        if (IsInternal(e.alias)) return false;
        // FieldTrim: skip binding edges whose alias no downstream operator
        // needs (null trimmed_tags_ means "no trim info: bind all named").
        return trimmed_tags_ == nullptr || trimmed_tags_->count(e.alias) > 0;
      };
      bool any_path = false, any_bind = false;
      for (int eid : node->added_edges) {
        const PatternEdge& e = full.EdgeById(eid);
        any_path |= e.IsPath();
        any_bind |= needs_binding(e);
      }
      bool use_intersect =
          node->expand_spec &&
          node->expand_spec->Impl() == PhysExpandImpl::kExpandIntersect &&
          node->added_edges.size() > 1 && node->new_vertex >= 0 && !any_path &&
          !any_bind;
      if (use_intersect) {
        const PatternVertex& nv = full.VertexById(node->new_vertex);
        auto op = std::make_shared<PhysOp>(PhysOpKind::kExpandIntersect);
        op->children = {in};
        op->alias = nv.alias;
        op->vtc = nv.tc;
        op->vertex_preds = nv.predicates;
        for (int eid : node->added_edges) {
          const PatternEdge& e = full.EdgeById(eid);
          IntersectArm arm;
          bool from_src = (e.dst == node->new_vertex);
          const PatternVertex& fv = full.VertexById(from_src ? e.src : e.dst);
          arm.from_tag = fv.alias;
          if (e.dir == Direction::kBoth) {
            arm.dir = Direction::kBoth;
          } else {
            arm.dir = from_src ? Direction::kOut : Direction::kIn;
          }
          arm.etc_ = e.tc;
          arm.edge_preds = e.predicates;
          op->arms.push_back(std::move(arm));
        }
        op->out_cols = in->out_cols;
        op->out_cols.push_back(nv.alias);
        op->est_rows = node->freq;
        return op;
      }
      // Sequential expansion: the first edge incident to the new vertex
      // binds it; the rest (and pure closing steps) check adjacency.
      std::vector<int> order = node->added_edges;
      if (node->new_vertex >= 0) {
        // All added edges touch the new vertex by construction; keep order.
      }
      PhysOpPtr cur = in;
      for (int eid : order) {
        const PatternEdge& e = full.EdgeById(eid);
        cur = MakeEdgeStep(node->pattern, e, cur, needs_binding(e));
      }
      // The CBO's frequency estimate covers the whole expand step; annotate
      // its final operator (intermediate edge steps stay unknown).
      if (cur != in) cur->est_rows = node->freq;
      return cur;
    }
    case PatternPlanNode::Kind::kJoin: {
      PhysOpPtr l = ConvertPlanRec(full, node->left, bind_all_edges);
      PhysOpPtr r = ConvertPlanRec(full, node->right, bind_all_edges);
      auto op = std::make_shared<PhysOp>(PhysOpKind::kHashJoin);
      op->children = {l, r};
      for (int vid : node->join_vertices) {
        op->join_keys.push_back(full.VertexById(vid).alias);
      }
      op->join_kind = JoinKind::kInner;
      op->out_cols = l->out_cols;
      for (const auto& c : r->out_cols) {
        if (!HasCol(op->out_cols, c)) op->out_cols.push_back(c);
      }
      op->est_rows = node->freq;
      return op;
    }
  }
  throw std::runtime_error("ConvertPlanRec: bad node");
}

PhysOpPtr PhysicalConverter::FinishPattern(const LogicalOp& op, PhysOpPtr in) {
  // No-repeated-edge semantics: all-distinct filter over the matched edges
  // (paper Remark 3.1).
  if (opts_.semantics == MatchSemantics::kNoRepeatedEdge) {
    std::vector<ExprPtr> args;
    for (const auto& e : op.pattern.edges()) {
      if (HasCol(in->out_cols, e.alias)) {
        args.push_back(Expr::MakeVar(e.alias));
      }
    }
    if (args.size() >= 2 || (args.size() == 1 && op.pattern.HasPathEdge())) {
      auto sel = std::make_shared<PhysOp>(PhysOpKind::kSelect);
      sel->children = {in};
      sel->predicate = Expr::MakeFunc("all_edges_distinct", args);
      sel->out_cols = in->out_cols;
      sel->est_rows = in->est_rows;
      in = sel;
    }
  }
  // Column pruning: FieldTrim's output_tags, or every user-visible alias.
  std::set<std::string> keep;
  if (op.trimmed) {
    for (const auto& t : op.output_tags) keep.insert(t);
  } else {
    for (const auto& c : in->out_cols) {
      if (!IsInternal(c)) keep.insert(c);
    }
  }
  std::vector<std::string> kept;
  for (const auto& c : in->out_cols) {
    if (keep.count(c)) kept.push_back(c);
  }
  // Rows must survive even if no column is referenced (e.g. COUNT(*)).
  if (kept.empty() && !in->out_cols.empty()) kept.push_back(in->out_cols[0]);
  if (kept.size() == in->out_cols.size()) return in;
  auto proj = std::make_shared<PhysOp>(PhysOpKind::kProject);
  proj->children = {in};
  for (const auto& c : kept) {
    proj->items.push_back({Expr::MakeVar(c), c});
  }
  proj->append = false;
  proj->out_cols = kept;
  proj->est_rows = in->est_rows;
  return proj;
}

PhysOpPtr PhysicalConverter::ConvertPatternPlan(const LogicalOp& match_op,
                                                const PatternPlanPtr& plan) {
  bool bind_all = opts_.semantics == MatchSemantics::kNoRepeatedEdge;
  std::set<std::string> trimmed(match_op.output_tags.begin(),
                                match_op.output_tags.end());
  trimmed_tags_ = match_op.trimmed ? &trimmed : nullptr;
  PhysOpPtr body = ConvertPlanRec(match_op.pattern, plan, bind_all);
  trimmed_tags_ = nullptr;
  return FinishPattern(match_op, body);
}

PhysOpPtr PhysicalConverter::ConvertNode(
    const LogicalOpPtr& op,
    const std::map<const LogicalOp*, PatternPlanPtr>& pattern_plans) {
  auto sh = shared_.find(op.get());
  if (sh != shared_.end()) return sh->second;

  PhysOpPtr out;
  switch (op->kind) {
    case LogicalOpKind::kMatchPattern: {
      auto it = pattern_plans.find(op.get());
      if (it == pattern_plans.end()) {
        throw std::runtime_error("Convert: missing pattern plan");
      }
      out = ConvertPatternPlan(*op, it->second);
      break;
    }
    case LogicalOpKind::kPatternExtend: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      std::set<int> bound_e(op->bound_edges.begin(), op->bound_edges.end());
      // Expand delta edges in dependency order.
      std::vector<int> delta;
      for (const auto& e : op->pattern.edges()) {
        if (!bound_e.count(e.id)) delta.push_back(e.id);
      }
      bool bind_all = opts_.semantics == MatchSemantics::kNoRepeatedEdge;
      std::set<std::string> trimmed(op->output_tags.begin(),
                                    op->output_tags.end());
      PhysOpPtr cur = in;
      std::vector<int> remaining = delta;
      while (!remaining.empty()) {
        bool progress = false;
        for (size_t i = 0; i < remaining.size(); ++i) {
          const PatternEdge& e = op->pattern.EdgeById(remaining[i]);
          const auto& sa = op->pattern.VertexById(e.src).alias;
          const auto& da = op->pattern.VertexById(e.dst).alias;
          if (HasCol(cur->out_cols, sa) || HasCol(cur->out_cols, da)) {
            bool bind = bind_all || (!IsInternal(e.alias) &&
                                     (!op->trimmed || trimmed.count(e.alias)));
            cur = MakeEdgeStep(op->pattern, e, cur, bind);
            remaining.erase(remaining.begin() + static_cast<long>(i));
            progress = true;
            break;
          }
        }
        if (!progress) {
          throw std::runtime_error("PatternExtend: disconnected delta");
        }
      }
      out = FinishPattern(*op, cur);
      break;
    }
    case LogicalOpKind::kSelect: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kSelect);
      out->children = {in};
      out->predicate = op->predicate;
      out->out_cols = in->out_cols;
      out->est_rows = in->est_rows;
      break;
    }
    case LogicalOpKind::kProject: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kProject);
      out->children = {in};
      out->items = op->items;
      out->append = op->append;
      if (op->append) {
        out->out_cols = in->out_cols;
      }
      for (const auto& item : op->items) out->out_cols.push_back(item.alias);
      out->est_rows = in->est_rows;
      break;
    }
    case LogicalOpKind::kAggregate: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kAggregate);
      out->children = {in};
      out->group_keys = op->group_keys;
      out->aggs = op->aggs;
      for (const auto& k : op->group_keys) out->out_cols.push_back(k.alias);
      for (const auto& a : op->aggs) out->out_cols.push_back(a.alias);
      break;
    }
    case LogicalOpKind::kOrder: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kOrder);
      out->children = {in};
      out->sort_items = op->sort_items;
      out->limit = op->limit;
      out->out_cols = in->out_cols;
      break;
    }
    case LogicalOpKind::kLimit: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kLimit);
      out->children = {in};
      out->limit = op->limit;
      out->out_cols = in->out_cols;
      break;
    }
    case LogicalOpKind::kDedup: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kDedup);
      out->children = {in};
      out->dedup_tags = op->dedup_tags;
      out->out_cols = in->out_cols;
      break;
    }
    case LogicalOpKind::kJoin: {
      PhysOpPtr l = ConvertNode(op->inputs[0], pattern_plans);
      PhysOpPtr r = ConvertNode(op->inputs[1], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kHashJoin);
      out->children = {l, r};
      out->join_keys = op->join_keys;
      out->join_kind = op->join_kind;
      out->out_cols = l->out_cols;
      if (op->join_kind == JoinKind::kInner ||
          op->join_kind == JoinKind::kLeftOuter) {
        for (const auto& c : r->out_cols) {
          if (!HasCol(out->out_cols, c)) out->out_cols.push_back(c);
        }
      }
      break;
    }
    case LogicalOpKind::kUnion: {
      PhysOpPtr l = ConvertNode(op->inputs[0], pattern_plans);
      PhysOpPtr r = ConvertNode(op->inputs[1], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kUnion);
      out->children = {l, r};
      out->union_distinct = op->union_distinct;
      out->out_cols = l->out_cols;
      break;
    }
    case LogicalOpKind::kUnfold: {
      PhysOpPtr in = ConvertNode(op->inputs[0], pattern_plans);
      out = std::make_shared<PhysOp>(PhysOpKind::kUnfold);
      out->children = {in};
      out->unfold_tag = op->unfold_tag;
      out->unfold_alias = op->unfold_alias;
      out->out_cols = in->out_cols;
      out->out_cols.push_back(op->unfold_alias);
      break;
    }
  }
  shared_[op.get()] = out;
  return out;
}

}  // namespace gopt
