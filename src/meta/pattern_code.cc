#include "src/meta/pattern_code.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/hash.h"

namespace gopt {

namespace {

size_t HashTypeConstraint(const TypeConstraint& tc) {
  if (tc.IsAll()) return 0xA11A11;
  size_t h = 0x7c;
  for (TypeId t : tc.types()) h = HashCombine(h, t);
  return h;
}

size_t HashVertexLabel(const PatternVertex& v, bool with_preds) {
  size_t h = HashTypeConstraint(v.tc);
  if (with_preds) {
    h = HashCombine(h, static_cast<size_t>(v.selectivity * 4096));
    for (const auto& p : v.predicates) {
      h = HashCombine(h, std::hash<std::string>()(p->ToString()));
    }
  }
  return h;
}

size_t HashEdgeLabel(const PatternEdge& e, bool with_preds) {
  size_t h = HashTypeConstraint(e.tc);
  h = HashCombine(h, static_cast<size_t>(e.dir));
  h = HashCombine(h, static_cast<size_t>(e.min_hops));
  h = HashCombine(h, static_cast<size_t>(e.max_hops));
  h = HashCombine(h, static_cast<size_t>(e.semantics));
  if (with_preds) {
    h = HashCombine(h, static_cast<size_t>(e.selectivity * 4096));
    for (const auto& p : e.predicates) {
      h = HashCombine(h, std::hash<std::string>()(p->ToString()));
    }
  }
  return h;
}

void AppendU64(std::string* out, uint64_t x) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((x >> (i * 8)) & 0xff));
}

void AppendTc(std::string* out, const TypeConstraint& tc) {
  if (tc.IsAll()) {
    out->push_back('\x7f');
    return;
  }
  out->push_back(static_cast<char>(tc.types().size()));
  for (TypeId t : tc.types()) AppendU64(out, t);
}

/// Serializes the pattern under a fixed vertex ordering (pos[id] = rank).
std::string Serialize(const Pattern& p, const std::map<int, int>& pos,
                      bool with_preds) {
  std::string out;
  out.push_back(static_cast<char>(p.NumVertices()));
  // Vertices in rank order.
  std::vector<const PatternVertex*> vs(p.NumVertices());
  for (const auto& v : p.vertices()) vs[pos.at(v.id)] = &v;
  for (const auto* v : vs) {
    AppendTc(&out, v->tc);
    if (with_preds) {
      AppendU64(&out, static_cast<uint64_t>(v->selectivity * 4096));
      AppendU64(&out, v->predicates.size());
      for (const auto& pr : v->predicates) out += pr->ToString();
    }
  }
  // Edges as sorted tuples.
  std::vector<std::string> etuples;
  for (const auto& e : p.edges()) {
    int s = pos.at(e.src), d = pos.at(e.dst);
    char dir = static_cast<char>(e.dir);
    if (e.dir == Direction::kBoth && s > d) std::swap(s, d);
    std::string t;
    t.push_back(static_cast<char>(s));
    t.push_back(static_cast<char>(d));
    t.push_back(dir);
    t.push_back(static_cast<char>(e.min_hops));
    t.push_back(static_cast<char>(e.max_hops));
    t.push_back(static_cast<char>(e.semantics));
    AppendTc(&t, e.tc);
    if (with_preds) {
      AppendU64(&t, static_cast<uint64_t>(e.selectivity * 4096));
      for (const auto& pr : e.predicates) t += pr->ToString();
    }
    etuples.push_back(std::move(t));
  }
  std::sort(etuples.begin(), etuples.end());
  out.push_back(static_cast<char>(etuples.size()));
  for (auto& t : etuples) out += t;
  return out;
}

}  // namespace

std::string CanonicalPatternCode(const Pattern& p, bool with_preds) {
  const size_t n = p.NumVertices();
  if (n == 0) return "";

  // --- WL color refinement ---
  std::vector<int> vids;
  std::map<int, size_t> inv;  // vertex id -> invariant
  for (const auto& v : p.vertices()) {
    vids.push_back(v.id);
    inv[v.id] = HashVertexLabel(v, with_preds);
  }
  for (int round = 0; round < 3; ++round) {
    std::map<int, size_t> next;
    for (int id : vids) {
      std::vector<size_t> sig;
      for (const auto& e : p.edges()) {
        if (e.src != id && e.dst != id) continue;
        size_t rel;
        if (e.dir == Direction::kBoth) {
          rel = 2;
        } else {
          rel = (e.src == id) ? 0 : 1;
        }
        int other = (e.src == id) ? e.dst : e.src;
        sig.push_back(HashCombine(HashCombine(HashEdgeLabel(e, with_preds), rel),
                                  inv[other]));
      }
      std::sort(sig.begin(), sig.end());
      size_t h = inv[id];
      for (size_t s : sig) h = HashCombine(h, s);
      next[id] = h;
    }
    inv = std::move(next);
  }

  // --- group by invariant; enumerate orderings within groups ---
  std::sort(vids.begin(), vids.end(), [&](int a, int b) {
    return inv[a] != inv[b] ? inv[a] < inv[b] : a < b;
  });
  std::vector<std::vector<int>> groups;
  for (int id : vids) {
    if (!groups.empty() && inv[groups.back().back()] == inv[id]) {
      groups.back().push_back(id);
    } else {
      groups.push_back({id});
    }
  }
  // Bound the number of orderings to keep the worst case trivial.
  uint64_t total = 1;
  for (const auto& g : groups) {
    for (size_t i = 2; i <= g.size(); ++i) total *= i;
    if (total > 5040) break;
  }
  if (total > 5040) {
    std::map<int, int> pos;
    for (size_t i = 0; i < vids.size(); ++i) pos[vids[i]] = static_cast<int>(i);
    return Serialize(p, pos, with_preds);
  }

  std::string best;
  std::vector<std::vector<int>> perms = groups;  // mutated by next_permutation
  // Iterate the cartesian product of group permutations.
  while (true) {
    std::map<int, int> pos;
    int rank = 0;
    for (const auto& g : perms) {
      for (int id : g) pos[id] = rank++;
    }
    std::string s = Serialize(p, pos, with_preds);
    if (best.empty() || s < best) best = std::move(s);
    // Advance to the next combination of permutations.
    size_t gi = 0;
    while (gi < perms.size() &&
           !std::next_permutation(perms[gi].begin(), perms[gi].end())) {
      ++gi;  // this group wrapped; carry to the next
    }
    if (gi == perms.size()) break;
  }
  return best;
}

}  // namespace gopt
