#include "src/meta/glogue.h"

#include <algorithm>
#include <atomic>
#include <array>
#include <tuple>

#include "src/common/rng.h"
#include "src/meta/pattern_code.h"

namespace gopt {

uint64_t Glogue::NextInstanceId() {
  // Starts at 1: epoch 0 is reserved for "lazily self-built statistics".
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

/// A concrete sampled edge used during motif counting.
struct SEdge {
  VertexId src;
  VertexId dst;
  TypeId type;
};

/// Arm bucket for wedge counting: an incident-edge class of a middle vertex.
struct Arm {
  bool out;       // edge leaves the middle vertex
  TypeId etype;
  TypeId vtype;   // type of the far endpoint
  bool operator<(const Arm& o) const {
    return std::tie(out, etype, vtype) < std::tie(o.out, o.etype, o.vtype);
  }
  bool operator==(const Arm& o) const {
    return out == o.out && etype == o.etype && vtype == o.vtype;
  }
};

/// Builds the 3-vertex wedge pattern middle--armA, middle--armB.
Pattern WedgePattern(TypeId middle, const Arm& a, const Arm& b) {
  Pattern p;
  int m = p.AddVertex("", TypeConstraint::Basic(middle));
  int l1 = p.AddVertex("", TypeConstraint::Basic(a.vtype));
  int l2 = p.AddVertex("", TypeConstraint::Basic(b.vtype));
  if (a.out) {
    p.AddEdge(m, l1, "", TypeConstraint::Basic(a.etype));
  } else {
    p.AddEdge(l1, m, "", TypeConstraint::Basic(a.etype));
  }
  if (b.out) {
    p.AddEdge(m, l2, "", TypeConstraint::Basic(b.etype));
  } else {
    p.AddEdge(l2, m, "", TypeConstraint::Basic(b.etype));
  }
  return p;
}

uint64_t PairKey(VertexId a, VertexId b) {
  VertexId lo = std::min(a, b), hi = std::max(a, b);
  return (lo << 32) ^ hi;
}

/// A directed typed edge between two vertices of a candidate triangle.
struct TriEdge {
  VertexId src, dst;
  TypeId type;
};

/// Number of automorphisms of a concrete 3-vertex, 3-edge typed instance.
/// Brute force over the 6 permutations (paper motifs are tiny).
int TriangleAutomorphisms(const std::array<VertexId, 3>& vs,
                          const std::array<TypeId, 3>& vtypes,
                          const std::vector<TriEdge>& edges) {
  int count = 0;
  std::array<int, 3> perm = {0, 1, 2};
  std::sort(perm.begin(), perm.end());
  do {
    // Type preservation.
    bool ok = true;
    for (int i = 0; i < 3 && ok; ++i) ok = vtypes[i] == vtypes[perm[i]];
    // Edge preservation: map each edge (by index in vs) through perm and
    // require an identical edge to exist.
    auto indexOf = [&](VertexId v) {
      for (int i = 0; i < 3; ++i) {
        if (vs[i] == v) return i;
      }
      return -1;
    };
    for (const auto& e : edges) {
      if (!ok) break;
      int si = indexOf(e.src), di = indexOf(e.dst);
      VertexId ms = vs[perm[si]], md = vs[perm[di]];
      bool found = false;
      for (const auto& f : edges) {
        if (f.src == ms && f.dst == md && f.type == e.type) {
          found = true;
          break;
        }
      }
      ok = found;
    }
    if (ok) ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return count;
}

}  // namespace

Glogue Glogue::FromLowOrderStats(
    const GraphSchema& schema, std::vector<double> vertex_freqs,
    std::map<std::tuple<TypeId, TypeId, TypeId>, double> edge_triples) {
  Glogue gl;
  gl.k_ = 2;
  gl.vfreq_ = std::move(vertex_freqs);
  gl.vfreq_.resize(schema.NumVertexTypes(), 0.0);
  gl.efreq_.assign(schema.NumEdgeTypes(), 0.0);
  gl.etriple_ = std::move(edge_triples);
  for (double f : gl.vfreq_) gl.total_vertices_ += f;
  for (const auto& [key, freq] : gl.etriple_) {
    gl.efreq_[std::get<1>(key)] += freq;
    gl.total_edges_ += freq;
    auto [s, e, d] = key;
    Pattern p;
    int a = p.AddVertex("", TypeConstraint::Basic(s));
    int b = p.AddVertex("", TypeConstraint::Basic(d));
    p.AddEdge(a, b, "", TypeConstraint::Basic(e));
    gl.motifs_[CanonicalPatternCode(p)] += freq;
  }
  for (size_t t = 0; t < gl.vfreq_.size(); ++t) {
    if (gl.vfreq_[t] == 0) continue;
    Pattern p;
    p.AddVertex("", TypeConstraint::Basic(static_cast<TypeId>(t)));
    gl.motifs_[CanonicalPatternCode(p)] = gl.vfreq_[t];
  }
  return gl;
}

double Glogue::EdgeTripleFreq(TypeId s, TypeId e, TypeId d) const {
  auto it = etriple_.find({s, e, d});
  return it == etriple_.end() ? 0.0 : it->second;
}

std::optional<double> Glogue::Lookup(const Pattern& p) const {
  if (static_cast<int>(p.NumVertices()) > k_ || !p.AllBasicTypes() ||
      p.HasPathEdge()) {
    return std::nullopt;
  }
  for (const auto& e : p.edges()) {
    if (e.dir == Direction::kBoth) return std::nullopt;
  }
  // Multi-edges between the same vertex pair are not precomputed.
  std::vector<std::pair<int, int>> pairs;
  for (const auto& e : p.edges()) {
    auto pr = std::minmax(e.src, e.dst);
    pairs.emplace_back(pr.first, pr.second);
  }
  std::sort(pairs.begin(), pairs.end());
  if (std::adjacent_find(pairs.begin(), pairs.end()) != pairs.end()) {
    return std::nullopt;
  }
  auto it = motifs_.find(CanonicalPatternCode(p));
  return it == motifs_.end() ? 0.0 : it->second;
}

Glogue Glogue::Build(const PropertyGraph& g, GlogueOptions opts) {
  Glogue gl;
  gl.k_ = opts.max_pattern_vertices;
  const GraphSchema& schema = g.schema();

  // ---- low-order statistics (always exact) ----
  gl.vfreq_.assign(schema.NumVertexTypes(), 0.0);
  for (size_t t = 0; t < schema.NumVertexTypes(); ++t) {
    gl.vfreq_[t] = static_cast<double>(g.NumVerticesOfType(static_cast<TypeId>(t)));
    gl.total_vertices_ += gl.vfreq_[t];
  }
  gl.efreq_.assign(schema.NumEdgeTypes(), 0.0);

  // ---- sampled edge set ----
  const double rate = opts.edge_sample_rate;
  Rng rng(opts.sample_seed);
  std::vector<SEdge> edges;
  edges.reserve(static_cast<size_t>(static_cast<double>(g.NumEdges()) * rate) + 16);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    gl.efreq_[g.EdgeType(e)] += 1.0;
    gl.total_edges_ += 1.0;
    if (rate >= 1.0 || rng.NextDouble() < rate) {
      edges.push_back({g.EdgeSrc(e), g.EdgeDst(e), g.EdgeType(e)});
    }
  }
  const double scale1 = 1.0 / rate;  // per-motif-edge scale factor

  // Edge triple frequencies (scaled if sampled; exact when rate == 1).
  for (const auto& e : edges) {
    gl.etriple_[{g.VertexType(e.src), e.type, g.VertexType(e.dst)}] += scale1;
  }

  // ---- motif store: 1-vertex and 1-edge patterns ----
  for (size_t t = 0; t < schema.NumVertexTypes(); ++t) {
    if (gl.vfreq_[t] == 0) continue;
    Pattern p;
    p.AddVertex("", TypeConstraint::Basic(static_cast<TypeId>(t)));
    gl.motifs_[CanonicalPatternCode(p)] = gl.vfreq_[t];
  }
  for (const auto& [key, freq] : gl.etriple_) {
    auto [s, e, d] = key;
    Pattern p;
    int a = p.AddVertex("", TypeConstraint::Basic(s));
    int b = p.AddVertex("", TypeConstraint::Basic(d));
    p.AddEdge(a, b, "", TypeConstraint::Basic(e));
    gl.motifs_[CanonicalPatternCode(p)] += freq;
  }
  if (gl.k_ < 3) return gl;

  // ---- sampled adjacency (undirected, with parallel-edge payloads) ----
  const size_t nv = g.NumVertices();
  std::vector<std::vector<std::pair<VertexId, SEdge>>> undirected(nv);
  for (const auto& e : edges) {
    undirected[e.src].push_back({e.dst, e});
    if (e.dst != e.src) undirected[e.dst].push_back({e.src, e});
  }

  // ---- wedges: per middle vertex, bucket incident edges into arms ----
  {
    std::map<std::tuple<TypeId, Arm, Arm>, double> wedge_counts;
    std::map<Arm, double> arms;
    for (VertexId v = 0; v < nv; ++v) {
      arms.clear();
      for (const auto& [nbr, e] : undirected[v]) {
        bool out = (e.src == v);
        arms[Arm{out, e.type, g.VertexType(nbr)}] += 1.0;
      }
      if (arms.size() == 0) continue;
      TypeId mid = g.VertexType(v);
      for (auto it1 = arms.begin(); it1 != arms.end(); ++it1) {
        for (auto it2 = it1; it2 != arms.end(); ++it2) {
          wedge_counts[{mid, it1->first, it2->first}] +=
              it1->second * it2->second;
        }
      }
    }
    const double scale2 = scale1 * scale1;
    for (const auto& [key, cnt] : wedge_counts) {
      auto& [mid, a, b] = key;
      Pattern p = WedgePattern(mid, a, b);
      gl.motifs_[CanonicalPatternCode(p)] += cnt * scale2;
    }
  }

  // ---- triangles: degree-ranked enumeration ----
  {
    // Parallel-edge lists per unordered vertex pair.
    std::unordered_map<uint64_t, std::vector<TriEdge>> pair_edges;
    pair_edges.reserve(edges.size() * 2);
    for (const auto& e : edges) {
      pair_edges[PairKey(e.src, e.dst)].push_back({e.src, e.dst, e.type});
    }
    // Rank by (undirected degree, id); adjacency restricted to higher rank.
    std::vector<uint32_t> rank(nv);
    {
      std::vector<VertexId> order(nv);
      for (VertexId v = 0; v < nv; ++v) order[v] = v;
      std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        size_t da = undirected[a].size(), db = undirected[b].size();
        return da != db ? da < db : a < b;
      });
      for (size_t i = 0; i < nv; ++i) rank[order[i]] = static_cast<uint32_t>(i);
    }
    std::vector<std::vector<VertexId>> up(nv);
    for (VertexId v = 0; v < nv; ++v) {
      for (const auto& [nbr, e] : undirected[v]) {
        if (rank[nbr] > rank[v]) up[v].push_back(nbr);
      }
      std::sort(up[v].begin(), up[v].end());
      up[v].erase(std::unique(up[v].begin(), up[v].end()), up[v].end());
    }
    const double scale3 = scale1 * scale1 * scale1;
    std::unordered_map<std::string, double> tri_counts;
    for (VertexId u = 0; u < nv; ++u) {
      const auto& ups = up[u];
      for (size_t i = 0; i < ups.size(); ++i) {
        for (size_t j = i + 1; j < ups.size(); ++j) {
          VertexId v = ups[i], w = ups[j];
          auto it = pair_edges.find(PairKey(v, w));
          if (it == pair_edges.end()) continue;
          const auto& uv = pair_edges[PairKey(u, v)];
          const auto& uw = pair_edges[PairKey(u, w)];
          const auto& vw = it->second;
          std::array<VertexId, 3> vs = {u, v, w};
          std::array<TypeId, 3> vts = {g.VertexType(u), g.VertexType(v),
                                       g.VertexType(w)};
          // Every combination of one concrete edge per pair is an instance.
          for (const auto& e1 : uv) {
            for (const auto& e2 : uw) {
              for (const auto& e3 : vw) {
                std::vector<TriEdge> inst = {e1, e2, e3};
                Pattern p;
                std::map<VertexId, int> vid;
                for (int x = 0; x < 3; ++x) {
                  vid[vs[x]] = p.AddVertex("", TypeConstraint::Basic(vts[x]));
                }
                for (const auto& te : inst) {
                  p.AddEdge(vid[te.src], vid[te.dst], "",
                            TypeConstraint::Basic(te.type));
                }
                int aut = TriangleAutomorphisms(vs, vts, inst);
                tri_counts[CanonicalPatternCode(p)] +=
                    static_cast<double>(aut) * scale3;
              }
            }
          }
        }
      }
    }
    for (auto& [code, cnt] : tri_counts) gl.motifs_[code] += cnt;
  }

  return gl;
}

}  // namespace gopt
