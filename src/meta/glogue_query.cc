#include "src/meta/glogue_query.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>

#include "src/meta/pattern_code.h"

namespace gopt {

namespace {
constexpr double kFreqFloor = 1e-9;
constexpr int kMaxEnumCombos = 512;
constexpr int kMaxSplitEdges = 10;
constexpr int kMaxDepth = 64;

/// Connected components of a pattern, by vertex-id sets.
std::vector<std::vector<int>> Components(const Pattern& p) {
  std::vector<std::vector<int>> comps;
  std::set<int> seen;
  for (const auto& v : p.vertices()) {
    if (seen.count(v.id)) continue;
    std::vector<int> comp;
    std::vector<int> stack = {v.id};
    while (!stack.empty()) {
      int x = stack.back();
      stack.pop_back();
      if (seen.count(x)) continue;
      seen.insert(x);
      comp.push_back(x);
      for (int n : p.NeighborVertices(x)) stack.push_back(n);
    }
    comps.push_back(std::move(comp));
  }
  return comps;
}

Pattern InducedByVertexSet(const Pattern& p, const std::vector<int>& vids) {
  std::set<int> want(vids.begin(), vids.end());
  Pattern out;
  for (const auto& v : p.vertices()) {
    if (want.count(v.id)) out.AddVertex(v.alias, v.tc, v.id);
  }
  for (const auto& e : p.edges()) {
    if (want.count(e.src) && want.count(e.dst)) {
      int id = out.AddEdge(e.src, e.dst, e.alias, e.tc, e.dir, e.id);
      out.EdgeById(id) = e;
    }
  }
  return out;
}

}  // namespace

double GlogueQuery::VertexFreq(const TypeConstraint& tc) const {
  double sum = 0;
  for (TypeId t : tc.Resolve(schema_->AllVertexTypes())) {
    sum += gl_->VertexTypeFreq(t);
  }
  return std::max(sum, kFreqFloor);
}

double GlogueQuery::EdgeFreqBetween(const TypeConstraint& src,
                                    const TypeConstraint& etc_,
                                    const TypeConstraint& dst,
                                    Direction dir) const {
  if (!endpoint_filtered_) {
    // Rel-type totals only (label-count statistics).
    double sum = 0;
    for (TypeId t : etc_.Resolve(schema_->AllEdgeTypes())) {
      sum += gl_->EdgeTypeFreq(t);
    }
    return dir == Direction::kBoth ? 2 * sum : sum;
  }
  double sum = 0;
  for (const auto& [key, freq] : gl_->edge_triples()) {
    auto [s, e, d] = key;
    if (!etc_.Matches(e)) continue;
    bool fwd = src.Matches(s) && dst.Matches(d);
    bool rev = dir == Direction::kBoth && src.Matches(d) && dst.Matches(s);
    if (dir == Direction::kBoth) {
      if (fwd) sum += freq;
      if (rev) sum += freq;
    } else if (fwd) {
      sum += freq;
    }
  }
  return sum;
}

double GlogueQuery::GetFreq(const Pattern& p) const {
  double f = RawFreq(p);
  for (const auto& v : p.vertices()) f *= v.selectivity;
  for (const auto& e : p.edges()) f *= e.selectivity;
  return std::max(f, kFreqFloor);
}

double GlogueQuery::RawFreq(const Pattern& p) const {
  return EstimateRec(p, 0);
}

double GlogueQuery::EstimateRec(const Pattern& p, int depth) const {
  if (p.NumVertices() == 0) return 1.0;
  if (depth > kMaxDepth) return 1.0;
  std::string code = CanonicalPatternCode(p, /*with_preds=*/false);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(code);
    if (it != cache_.end()) return it->second;
  }

  double result;
  auto comps = Components(p);
  if (comps.size() > 1) {
    // Frequency of a disconnected pattern is the product of its components'
    // frequencies (cartesian semantics, paper Section 3).
    result = 1.0;
    for (const auto& comp : comps) {
      result *= EstimateConnected(InducedByVertexSet(p, comp), depth + 1);
    }
  } else {
    result = EstimateConnected(p, depth);
  }
  result = std::max(result, kFreqFloor);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_[code] = result;
  }
  return result;
}

double GlogueQuery::EstimateConnected(const Pattern& p, int depth) const {
  // Single vertex.
  if (p.NumVertices() == 1 && p.NumEdges() == 0) {
    return VertexFreq(p.vertices()[0].tc);
  }
  // Single non-path edge: exact from triple frequencies.
  if (p.NumEdges() == 1 && p.NumVertices() == 2 && !p.HasPathEdge()) {
    const PatternEdge& e = p.edges()[0];
    return std::max(EdgeFreqBetween(p.VertexById(e.src).tc, e.tc,
                                    p.VertexById(e.dst).tc, e.dir),
                    kFreqFloor);
  }

  if (high_order_) {
    // Direct motif lookup for BasicType patterns in range.
    if (auto f = gl_->Lookup(p)) return std::max(*f, kFreqFloor);
    // Enumerate concrete type combinations over the motif store.
    if (static_cast<int>(p.NumVertices()) <= gl_->max_pattern_vertices()) {
      double f = TryEnumerate(p);
      if (f >= 0) return std::max(f, kFreqFloor);
    }
  }
  // Eq. 1: binary split sharing vertices.
  double f = TryBinarySplit(p, depth);
  if (f >= 0) return std::max(f, kFreqFloor);
  // Eq. 2: peel one vertex and multiply expand ratios.
  return std::max(PeelVertex(p, depth), kFreqFloor);
}

double GlogueQuery::TryEnumerate(const Pattern& p) const {
  if (p.HasPathEdge()) return -1;
  for (const auto& e : p.edges()) {
    if (e.dir == Direction::kBoth) return -1;
  }
  // Count combinations first.
  double combos = 1;
  for (const auto& v : p.vertices()) {
    combos *= static_cast<double>(v.tc.Cardinality(schema_->NumVertexTypes()));
    if (combos > kMaxEnumCombos) return -1;
  }
  for (const auto& e : p.edges()) {
    combos *= static_cast<double>(e.tc.Cardinality(schema_->NumEdgeTypes()));
    if (combos > kMaxEnumCombos) return -1;
  }
  // Recursive assignment of concrete types to vertices, then edges.
  std::vector<const PatternVertex*> vs;
  for (const auto& v : p.vertices()) vs.push_back(&v);
  std::vector<const PatternEdge*> es;
  for (const auto& e : p.edges()) es.push_back(&e);

  double total = 0;
  std::map<int, TypeId> vassign;
  std::map<int, TypeId> eassign;

  std::function<void(size_t)> assign_edges;
  std::function<void(size_t)> assign_vertices;

  assign_edges = [&](size_t i) {
    if (i == es.size()) {
      Pattern q;
      for (const auto* v : vs) {
        q.AddVertex("", TypeConstraint::Basic(vassign[v->id]), v->id);
      }
      for (const auto* e : es) {
        q.AddEdge(e->src, e->dst, "", TypeConstraint::Basic(eassign[e->id]),
                  Direction::kOut, e->id);
      }
      if (auto f = gl_->Lookup(q)) total += *f;
      return;
    }
    const PatternEdge* e = es[i];
    for (TypeId t : e->tc.Resolve(schema_->AllEdgeTypes())) {
      // Prune schema-invalid assignments early.
      if (!schema_->CanConnect(vassign[e->src], t, vassign[e->dst])) continue;
      eassign[e->id] = t;
      assign_edges(i + 1);
    }
  };
  assign_vertices = [&](size_t i) {
    if (i == vs.size()) {
      assign_edges(0);
      return;
    }
    for (TypeId t : vs[i]->tc.Resolve(schema_->AllVertexTypes())) {
      vassign[vs[i]->id] = t;
      assign_vertices(i + 1);
    }
  };
  assign_vertices(0);
  return total;
}

double GlogueQuery::TryBinarySplit(const Pattern& p, int depth) const {
  const int m = static_cast<int>(p.NumEdges());
  if (m < 2 || m > kMaxSplitEdges) return -1;
  if (static_cast<int>(p.NumVertices()) <= gl_->max_pattern_vertices()) {
    return -1;  // in-range patterns are better served by enumeration/peel
  }
  std::vector<int> eids;
  for (const auto& e : p.edges()) eids.push_back(e.id);

  int best_common = -1;
  double best_f = -1;
  for (uint32_t mask = 1; mask + 1 < (1u << m); ++mask) {
    std::vector<int> s1, s2;
    for (int i = 0; i < m; ++i) {
      ((mask >> i) & 1 ? s1 : s2).push_back(eids[i]);
    }
    if (s1.size() > s2.size()) continue;  // dedupe unordered splits
    Pattern p1 = p.SubpatternByEdges(s1);
    Pattern p2 = p.SubpatternByEdges(s2);
    if (!p1.IsConnected() || !p2.IsConnected()) continue;
    if (static_cast<int>(p1.NumVertices()) > gl_->max_pattern_vertices())
      continue;
    if (static_cast<int>(p2.NumVertices()) > gl_->max_pattern_vertices())
      continue;
    auto common = p1.CommonVertices(p2);
    if (common.empty()) continue;
    if (static_cast<int>(common.size()) > best_common) {
      best_common = static_cast<int>(common.size());
      double f1 = EstimateRec(p1, depth + 1);
      double f2 = EstimateRec(p2, depth + 1);
      // The intersection is the common vertices with no edges.
      double fc = 1.0;
      for (int v : common) fc *= VertexFreq(p.VertexById(v).tc);
      best_f = f1 * f2 / std::max(fc, kFreqFloor);
    }
  }
  return best_f;
}

double GlogueQuery::PathEdgeRatio(const Pattern& p, const PatternEdge& e,
                                  int anchor_vertex, bool closes) const {
  const TypeConstraint& anchor_tc = p.VertexById(anchor_vertex).tc;
  int far = (e.src == anchor_vertex) ? e.dst : e.src;
  const TypeConstraint& far_tc = p.VertexById(far).tc;
  // Per-hop fanout from constraint S to constraint T, honoring the data
  // direction relative to the anchor side of the walk.
  const bool along = (e.src == anchor_vertex);  // walk follows src->dst
  TypeConstraint all = TypeConstraint::All();
  auto hop = [&](const TypeConstraint& s, const TypeConstraint& t) {
    double ef;
    if (e.dir == Direction::kBoth) {
      ef = EdgeFreqBetween(s, e.tc, t, Direction::kBoth);
    } else if (along) {
      ef = EdgeFreqBetween(s, e.tc, t, Direction::kOut);
    } else {
      ef = EdgeFreqBetween(t, e.tc, s, Direction::kOut);
    }
    return ef / VertexFreq(s);
  };
  double sum = 0;
  for (int l = std::max(1, e.min_hops); l <= e.max_hops; ++l) {
    double r;
    if (l == 1) {
      r = hop(anchor_tc, far_tc);
    } else {
      r = hop(anchor_tc, all);
      for (int i = 1; i < l - 1; ++i) r *= hop(all, all);
      r *= hop(all, far_tc);
    }
    sum += r;
  }
  if (closes) sum /= VertexFreq(far_tc);
  return sum;
}

double GlogueQuery::ExpandRatio(const Pattern& target, const PatternEdge& e,
                                int anchor_vertex, bool closes) const {
  if (e.IsPath()) return PathEdgeRatio(target, e, anchor_vertex, closes);
  // The numerator counts qualifying data edges irrespective of which
  // endpoint anchors the expansion.
  double ef = EdgeFreqBetween(target.VertexById(e.src).tc, e.tc,
                              target.VertexById(e.dst).tc, e.dir);
  int far = (e.src == anchor_vertex) ? e.dst : e.src;
  // The anchor endpoint divides; a closing expansion also divides by the
  // far endpoint's frequency (paper Eq. 2).
  double denom = VertexFreq(target.VertexById(anchor_vertex).tc);
  if (closes) denom *= VertexFreq(target.VertexById(far).tc);
  return ef / std::max(denom, kFreqFloor);
}

double GlogueQuery::PeelVertex(const Pattern& p, int depth) const {
  // Pick a removable (non-cut) vertex: fewest incident edges, then widest
  // type constraint, so estimation stays anchored on the most specific
  // part of the pattern.
  int best = -1;
  size_t best_deg = ~0ull;
  size_t best_card = 0;
  for (const auto& v : p.vertices()) {
    if (!p.IsConnectedWithout(v.id)) continue;
    size_t deg = p.IncidentEdges(v.id).size();
    size_t card = v.tc.Cardinality(schema_->NumVertexTypes());
    if (deg < best_deg || (deg == best_deg && card > best_card)) {
      best = v.id;
      best_deg = deg;
      best_card = card;
    }
  }
  if (best < 0) best = p.vertices()[0].id;  // no non-cut vertex (degenerate)

  Pattern base = p.WithoutVertex(best);
  double f = EstimateRec(base, depth + 1);
  // Append the peeled vertex's incident edges one at a time; the first
  // opens the new vertex (anchor = the endpoint in the base), later ones
  // close onto it (anchor = still the base-side endpoint).
  bool first = true;
  for (int eid : p.IncidentEdges(best)) {
    const PatternEdge& e = p.EdgeById(eid);
    int anchor = (e.src == best) ? e.dst : e.src;
    f *= ExpandRatio(p, e, anchor, /*closes=*/!first);
    first = false;
  }
  return f;
}

}  // namespace gopt
