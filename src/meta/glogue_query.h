#pragma once

#include <mutex>
#include <unordered_map>

#include "src/meta/glogue.h"

namespace gopt {

/// GlogueQuery: the unified cardinality-estimation interface of the paper
/// (Section 6.3.1). Given an arbitrary pattern — any mix of BasicType,
/// UnionType and AllType constraints, optionally with predicates and
/// variable-length path edges — GetFreq estimates its homomorphism
/// frequency:
///
///  - BasicType patterns within the GLogue motif range are answered exactly;
///  - small Union/All patterns are answered by enumerating concrete type
///    combinations over the motif store;
///  - larger patterns decompose by Eq. 1 (binary split over a shared
///    vertex set) and Eq. 2 (peeling one vertex and multiplying expand
///    ratios sigma), recursively, with results cached by canonical code.
///
/// With `high_order = false` the motif store is bypassed and everything is
/// estimated from vertex/edge frequencies alone — the low-order baseline of
/// the Fig. 8(d) ablation.
///
/// Thread-safety: estimation is const and memoizes by canonical pattern
/// code into an internal cache guarded by a mutex, so one GlogueQuery may
/// be queried from many planning threads concurrently (the engine shares
/// its two GlogueQuery instances across all Prepare calls, and the CBO
/// pass fans per-pattern planning out over a pool). Concurrent estimates
/// of the same uncached pattern may compute it twice; both writes store
/// the same value.
class GlogueQuery {
 public:
  /// `endpoint_filtered = false` degrades edge-frequency lookups to total
  /// per-edge-type counts, ignoring endpoint type constraints — the kind of
  /// rel-type/label-count statistics a Neo4j-style planner works with
  /// (used by the emulated CypherPlanner baseline).
  GlogueQuery(const Glogue* glogue, const GraphSchema* schema,
              bool high_order = true, bool endpoint_filtered = true)
      : gl_(glogue),
        schema_(schema),
        high_order_(high_order),
        endpoint_filtered_(endpoint_filtered) {}

  /// Estimated frequency including predicate selectivities.
  double GetFreq(const Pattern& p) const;

  /// Estimated frequency from type constraints only.
  double RawFreq(const Pattern& p) const;

  /// Sum of vertex-type frequencies matching a constraint.
  double VertexFreq(const TypeConstraint& tc) const;

  /// Sum of (src, edge, dst) triple frequencies compatible with the
  /// constraints; kBoth direction sums both orientations.
  double EdgeFreqBetween(const TypeConstraint& src, const TypeConstraint& etc_,
                         const TypeConstraint& dst, Direction dir) const;

  /// The expand ratio sigma for appending `e` (an edge of `target`) onto a
  /// base pattern that already contains the endpoint `anchor_vertex`;
  /// `closes` means the far endpoint is also already bound (paper Eq. 2).
  double ExpandRatio(const Pattern& target, const PatternEdge& e,
                     int anchor_vertex, bool closes) const;

  const GraphSchema& schema() const { return *schema_; }
  const Glogue& glogue() const { return *gl_; }
  bool high_order() const { return high_order_; }

  size_t CacheSize() const {
    std::lock_guard<std::mutex> lock(cache_mu_);
    return cache_.size();
  }

 private:
  double EstimateRec(const Pattern& p, int depth) const;
  double EstimateConnected(const Pattern& p, int depth) const;
  /// Enumerates concrete type combinations over the motif store; returns
  /// negative if the combination count exceeds the bound.
  double TryEnumerate(const Pattern& p) const;
  /// Eq. 1 binary split; returns negative if no usable split exists.
  double TryBinarySplit(const Pattern& p, int depth) const;
  /// Eq. 2 vertex peel (always applicable to connected patterns).
  double PeelVertex(const Pattern& p, int depth) const;

  double PathEdgeRatio(const Pattern& p, const PatternEdge& e,
                       int anchor_vertex, bool closes) const;

  const Glogue* gl_;
  const GraphSchema* schema_;
  bool high_order_;
  bool endpoint_filtered_ = true;
  /// Estimation memo, guarded by cache_mu_ (never held across the
  /// recursive estimation itself — only around lookups and inserts).
  mutable std::mutex cache_mu_;
  mutable std::unordered_map<std::string, double> cache_;
};

}  // namespace gopt
