#pragma once

#include <string>

#include "src/gir/pattern.h"

namespace gopt {

/// Computes a canonical byte-string code for a pattern: two patterns receive
/// the same code iff they are isomorphic as typed directed (multi)graphs,
/// considering type constraints, edge directions and path-expansion
/// parameters (and, when `with_preds`, embedded predicates/selectivities).
///
/// Used as the key of GLogue motif lookups and the GlogueQuery estimation
/// cache (paper Section 6.3.1). Patterns in CGPs are small, so the
/// canonicalization is exact: Weisfeiler-Leman color refinement followed by
/// enumeration of orderings within refined color classes (bounded; falls
/// back to a deterministic non-canonical order beyond the bound, which can
/// only cause cache misses, never wrong answers).
std::string CanonicalPatternCode(const Pattern& p, bool with_preds = false);

}  // namespace gopt
