#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/gir/pattern.h"
#include "src/graph/property_graph.h"

namespace gopt {

/// Options for building GLogue statistics.
struct GlogueOptions {
  /// Motifs with up to this many vertices are precomputed (paper: k >= 3).
  int max_pattern_vertices = 3;
  /// Edge-sampling sparsification rate in (0, 1]; counts are scaled by
  /// (1/rate)^(#edges) per motif (the GLogS sparsification technique).
  double edge_sample_rate = 1.0;
  uint64_t sample_seed = 7;
};

/// GLogue: the high-order statistics store (paper Section 4 / 6.3.1,
/// following GLogS [40]). Precomputes the homomorphism frequency of every
/// small motif (<= k vertices) present in the data graph, keyed by the
/// canonical pattern code, plus low-order vertex/edge frequencies.
class Glogue {
 public:
  /// Counts motifs over `g` (which must be finalized).
  static Glogue Build(const PropertyGraph& g, GlogueOptions opts = {});

  /// Builds a GLogue holding only low-order statistics supplied explicitly
  /// (vertex-type frequencies and (src, edge, dst) triple frequencies).
  /// Used by tests that reproduce the paper's worked examples (Fig. 6) and
  /// as the substrate of the low-order baseline.
  static Glogue FromLowOrderStats(
      const GraphSchema& schema, std::vector<double> vertex_freqs,
      std::map<std::tuple<TypeId, TypeId, TypeId>, double> edge_triples);

  /// Frequency of a vertex type.
  double VertexTypeFreq(TypeId t) const {
    return t < vfreq_.size() ? vfreq_[t] : 0.0;
  }
  /// Frequency of edges (s)-[e]->(d) for one concrete type triple.
  double EdgeTripleFreq(TypeId s, TypeId e, TypeId d) const;
  /// Total frequency of an edge type across all endpoint pairs.
  double EdgeTypeFreq(TypeId e) const {
    return e < efreq_.size() ? efreq_[e] : 0.0;
  }

  /// Direct motif lookup by canonical code of a BasicType pattern with at
  /// most max_pattern_vertices() vertices. Returns nullopt if the pattern is
  /// out of range; returns 0 for in-range patterns absent from the data.
  std::optional<double> Lookup(const Pattern& p) const;

  /// Process-unique identity of this statistics object, assigned from a
  /// monotonic counter at construction (copies keep the source's id: same
  /// content, same identity). The engine uses it as the plan-cache
  /// statistics epoch — unlike the object's address it is never reused
  /// after destruction, so a recycled allocation can't resurrect stale
  /// cached plans.
  uint64_t instance_id() const { return instance_id_; }

  int max_pattern_vertices() const { return k_; }
  size_t NumMotifs() const { return motifs_.size(); }
  double total_vertices() const { return total_vertices_; }
  double total_edges() const { return total_edges_; }

  /// All (src, edge, dst) triple frequencies (iterated by the estimator to
  /// resolve Union/All constraints).
  const std::map<std::tuple<TypeId, TypeId, TypeId>, double>& edge_triples()
      const {
    return etriple_;
  }

 private:
  static uint64_t NextInstanceId();

  int k_ = 3;
  double total_vertices_ = 0;
  double total_edges_ = 0;
  std::vector<double> vfreq_;
  std::vector<double> efreq_;
  std::map<std::tuple<TypeId, TypeId, TypeId>, double> etriple_;
  std::unordered_map<std::string, double> motifs_;
  uint64_t instance_id_ = NextInstanceId();
};

}  // namespace gopt
