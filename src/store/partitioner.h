#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/property_graph.h"

namespace gopt {

/// Vertex-partitioning policies of the sharded store (src/store/). Edge
/// placement always follows the source owner: an edge lives in the
/// partition that owns its source vertex, so every out-adjacency read is
/// partition-local and the cross-partition edges are exactly the edge-cut
/// the distributed cost model charges communication for.
enum class PartitionPolicy {
  kHash,     ///< owner = mix(vertex id) mod P — balanced, locality-free
  kRange,    ///< contiguous id ranges of near-equal size — locality-friendly
  kEdgeCut,  ///< greedy label propagation minimizing the edge-cut
};

const char* PartitionPolicyName(PartitionPolicy policy);

/// Structure-aware knobs of the kEdgeCut policy (ignored by hash/range).
/// Both shape the produced ownership map and therefore the store's measured
/// cut ratios the CBO prices communication with, so the engine carries them
/// in OptionsFingerprint (EngineOptions::partition_refine_sweeps /
/// partition_balance_cap).
struct PartitionerOptions {
  /// Maximum label-propagation refinement sweeps over the vertex domain.
  /// Each sweep visits vertices in ascending id order and moves a vertex to
  /// its neighbor-majority partition when that strictly reduces the cut;
  /// refinement stops early once a sweep makes no move. 0 degenerates to
  /// the hash seed.
  int refine_sweeps = 5;
  /// Balance cap: no partition may own more than
  /// `balance_cap * ceil(|V| / P)` vertices (a move that would overflow the
  /// target partition is skipped). Must be >= 1.0; values below are
  /// clamped to 1.0.
  double balance_cap = 1.1;
};

/// Maps every vertex of a finalized graph onto one of `num_partitions()`
/// partitions. Implementations must be total (every valid vertex id has
/// exactly one owner) and deterministic (same graph + parameters -> same
/// ownership), which the partitioner unit tests assert; both properties
/// are what lets two engines build interchangeable PartitionedGraphs.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  virtual std::string Name() const = 0;
  virtual PartitionPolicy policy() const = 0;
  /// Owner partition of `v`, in [0, num_partitions()).
  virtual int OwnerOf(VertexId v) const = 0;

  int num_partitions() const { return partitions_; }

 protected:
  explicit GraphPartitioner(int partitions)
      : partitions_(partitions < 1 ? 1 : partitions) {}

  int partitions_;
};

/// Hash policy: a 64-bit finalizer mix of the vertex id, mod P. Unlike the
/// plain `id % W` the distributed simulator used before this subsystem,
/// the mix decorrelates ownership from id arithmetic, so range-clustered
/// loaders (LDBC emits ids grouped by type) still balance.
class HashPartitioner : public GraphPartitioner {
 public:
  explicit HashPartitioner(int partitions) : GraphPartitioner(partitions) {}

  std::string Name() const override;
  PartitionPolicy policy() const override { return PartitionPolicy::kHash; }
  int OwnerOf(VertexId v) const override {
    // splitmix64 finalizer: deterministic, well-mixed, dependency-free.
    uint64_t x = v + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<uint64_t>(partitions_));
  }
};

/// Edge-cut policy: greedy label propagation. Ownership is seeded from the
/// hash policy (so with zero sweeps it IS the hash partitioning), then a
/// bounded number of refinement sweeps move each vertex toward the
/// partition owning the majority of its neighbors (out- plus in-adjacency),
/// under the per-partition balance cap. A move happens only when the
/// neighbor count strictly improves, so the total edge-cut is monotonically
/// non-increasing — never worse than hash — and the sweep visits vertices
/// in ascending id order with lowest-partition-id tie-breaking, so the
/// result is deterministic (two independently built partitioners agree).
/// The whole ownership map is precomputed at construction; OwnerOf is an
/// O(1) array read.
class EdgeCutPartitioner : public GraphPartitioner {
 public:
  EdgeCutPartitioner(int partitions, const PropertyGraph& g,
                     PartitionerOptions opts = {});

  std::string Name() const override;
  PartitionPolicy policy() const override { return PartitionPolicy::kEdgeCut; }
  int OwnerOf(VertexId v) const override {
    return owner_[static_cast<size_t>(v)];
  }

  /// Refinement sweeps actually performed (< refine_sweeps when a sweep
  /// converged early).
  int sweeps_run() const { return sweeps_run_; }
  /// Vertices moved off their hash seed by refinement.
  size_t moves() const { return moves_; }

 private:
  std::vector<int32_t> owner_;
  int sweeps_run_ = 0;
  size_t moves_ = 0;
};

/// Explicit policy: wraps a precomputed ownership vector — the rebalancer's
/// way of constructing a PartitionedGraph from a migrated map
/// (src/store/rebalancer.h). Reports the policy of the store it was derived
/// from; `label` names the generation (e.g. "rebalanced(edgecut(4),v2)").
class ExplicitPartitioner : public GraphPartitioner {
 public:
  ExplicitPartitioner(int partitions, PartitionPolicy derived_from,
                      std::string label, std::vector<int32_t> ownership)
      : GraphPartitioner(partitions),
        derived_from_(derived_from),
        label_(std::move(label)),
        owner_(std::move(ownership)) {}

  std::string Name() const override { return label_; }
  PartitionPolicy policy() const override { return derived_from_; }
  int OwnerOf(VertexId v) const override {
    return owner_[static_cast<size_t>(v)];
  }

 private:
  PartitionPolicy derived_from_;
  std::string label_;
  std::vector<int32_t> owner_;
};

/// Range policy: partition p owns the contiguous id range
/// [p*n/P, (p+1)*n/P). Preserves id locality (neighbors created together
/// stay together under loaders that emit communities contiguously) and
/// makes per-type scan lists concatenate back in global id order.
class RangePartitioner : public GraphPartitioner {
 public:
  RangePartitioner(int partitions, size_t num_vertices);

  std::string Name() const override;
  PartitionPolicy policy() const override { return PartitionPolicy::kRange; }
  int OwnerOf(VertexId v) const override;

 private:
  size_t num_vertices_;
};

/// Factory over the policy enum (`g` supplies the domain size the range
/// policy needs and the adjacency the edge-cut policy refines over;
/// `opts` only affects kEdgeCut).
std::unique_ptr<GraphPartitioner> MakePartitioner(
    PartitionPolicy policy, int partitions, const PropertyGraph& g,
    const PartitionerOptions& opts = {});

}  // namespace gopt
