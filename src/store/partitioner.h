#pragma once

#include <memory>
#include <string>

#include "src/graph/property_graph.h"

namespace gopt {

/// Vertex-partitioning policies of the sharded store (src/store/). Edge
/// placement always follows the source owner: an edge lives in the
/// partition that owns its source vertex, so every out-adjacency read is
/// partition-local and the cross-partition edges are exactly the edge-cut
/// the distributed cost model charges communication for.
enum class PartitionPolicy {
  kHash,   ///< owner = mix(vertex id) mod P — balanced, locality-free
  kRange,  ///< contiguous id ranges of near-equal size — locality-friendly
};

const char* PartitionPolicyName(PartitionPolicy policy);

/// Maps every vertex of a finalized graph onto one of `num_partitions()`
/// partitions. Implementations must be total (every valid vertex id has
/// exactly one owner) and deterministic (same graph + parameters -> same
/// ownership), which the partitioner unit tests assert; both properties
/// are what lets two engines build interchangeable PartitionedGraphs.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  virtual std::string Name() const = 0;
  virtual PartitionPolicy policy() const = 0;
  /// Owner partition of `v`, in [0, num_partitions()).
  virtual int OwnerOf(VertexId v) const = 0;

  int num_partitions() const { return partitions_; }

 protected:
  explicit GraphPartitioner(int partitions)
      : partitions_(partitions < 1 ? 1 : partitions) {}

  int partitions_;
};

/// Hash policy: a 64-bit finalizer mix of the vertex id, mod P. Unlike the
/// plain `id % W` the distributed simulator used before this subsystem,
/// the mix decorrelates ownership from id arithmetic, so range-clustered
/// loaders (LDBC emits ids grouped by type) still balance.
class HashPartitioner : public GraphPartitioner {
 public:
  explicit HashPartitioner(int partitions) : GraphPartitioner(partitions) {}

  std::string Name() const override;
  PartitionPolicy policy() const override { return PartitionPolicy::kHash; }
  int OwnerOf(VertexId v) const override {
    // splitmix64 finalizer: deterministic, well-mixed, dependency-free.
    uint64_t x = v + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<int>(x % static_cast<uint64_t>(partitions_));
  }
};

/// Range policy: partition p owns the contiguous id range
/// [p*n/P, (p+1)*n/P). Preserves id locality (neighbors created together
/// stay together under loaders that emit communities contiguously) and
/// makes per-type scan lists concatenate back in global id order.
class RangePartitioner : public GraphPartitioner {
 public:
  RangePartitioner(int partitions, size_t num_vertices);

  std::string Name() const override;
  PartitionPolicy policy() const override { return PartitionPolicy::kRange; }
  int OwnerOf(VertexId v) const override;

 private:
  size_t num_vertices_;
};

/// Factory over the policy enum (`g` supplies the domain size the range
/// policy needs).
std::unique_ptr<GraphPartitioner> MakePartitioner(PartitionPolicy policy,
                                                  int partitions,
                                                  const PropertyGraph& g);

}  // namespace gopt
