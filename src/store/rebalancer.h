#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/store/partitioned_graph.h"

namespace gopt {

/// Knobs of the skew-aware online rebalancer (docs/storage.md). Execution-
/// side only: rebalancing never changes query answers (ownership is
/// results-invariant, differential-tested), so none of these are part of
/// OptionsFingerprint — the migrated map itself is keyed by the store's
/// partition epoch instead.
struct RebalanceOptions {
  /// Trigger: rebalance only when max/mean observed per-partition rows
  /// exceeds this ratio (ignored with `force`).
  double overload_ratio = 1.2;
  /// No partition may end up owning more than
  /// `balance_cap * ceil(|V| / P)` vertices after migration.
  double balance_cap = 1.1;
  /// At most this fraction of all vertices moves in one rebalance — an
  /// incremental migration, not a re-partitioning from scratch.
  double max_move_fraction = 0.25;
  /// Migrate even when the observed skew is below overload_ratio (used by
  /// tests and by operators forcing a rebalance after a workload shift).
  bool force = false;
};

/// What a rebalance decided and did. `rebalanced == false` means the
/// ownership map was left untouched (reason says why) — the engine then
/// keeps its current store and epoch.
struct RebalanceReport {
  bool rebalanced = false;
  std::string reason;
  /// Observed max/mean per-partition rows that triggered (or failed to
  /// trigger) the migration; 0 when nothing was observed.
  double rows_balance_before = 0.0;
  size_t vertices_moved = 0;
  /// Store epochs across the swap (old == new when not rebalanced).
  uint64_t old_epoch = 0;
  uint64_t new_epoch = 0;
  int old_version = 0;
  int new_version = 0;
  /// Edge-cut before/after, so the cut cost of a balance-driven migration
  /// is visible.
  size_t old_cut_edges = 0;
  size_t new_cut_edges = 0;
};

/// A planned migration: the full new ownership map plus the number of
/// vertices it moves. Empty `ownership` (moves == 0) means "don't".
struct RebalancePlan {
  std::vector<int32_t> ownership;
  size_t moves = 0;
  double rows_balance = 0.0;
};

/// Plans a skew-aware incremental migration of `store`'s ownership map.
///
/// `observed_rows` is the accumulated per-partition row counters the
/// executors surfaced in ExecOutcome.stats.partition_rows (the engine sums
/// them across calls); empty or all-zero falls back to the store's owned
/// row counts — i.e. pure vertex-count balancing.
///
/// The heuristic: partitions whose observed load exceeds the mean shed
/// their hottest owned vertices — hottest = largest adjacency, the scan
/// and expansion row driver — to the currently least-loaded partition,
/// preferring (on load ties) the partition owning the plurality of the
/// vertex's neighbors so migration pays the smallest edge-cut price.
/// Per-vertex load is apportioned from the partition's observed rows
/// proportionally to (1 + degree). Moves stop when the source's projected
/// load reaches the mean, the per-partition vertex balance cap would be
/// violated, or max_move_fraction is exhausted. Deterministic: vertices
/// are considered in (descending degree, ascending id) order and all
/// tie-breaks are by lowest partition id.
RebalancePlan PlanRebalance(const PartitionedGraph& store,
                            const std::vector<uint64_t>& observed_rows,
                            const RebalanceOptions& opts = {});

}  // namespace gopt
