#include "src/store/partitioned_graph.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "src/common/str_format.h"

namespace gopt {

uint64_t PartitionedGraph::NextRebalanceEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const PartitionedGraph> PartitionedGraph::Build(
    const PropertyGraph* base, PartitionPolicy policy, int partitions,
    const PartitionerOptions& popts) {
  std::unique_ptr<GraphPartitioner> p =
      MakePartitioner(policy, partitions, *base, popts);
  return std::make_shared<const PartitionedGraph>(base, *p);
}

std::shared_ptr<const PartitionedGraph> PartitionedGraph::BuildRebalanced(
    const PartitionedGraph& parent, std::vector<int32_t> ownership) {
  if (ownership.size() != parent.base().NumVertices()) {
    throw std::logic_error(
        "BuildRebalanced: ownership map must cover every vertex");
  }
  const int next_version = parent.version() + 1;
  // Name from the root policy, not the parent's label, so repeated
  // rebalances read "rebalanced(edgecut(4),v3)" instead of nesting.
  ExplicitPartitioner p(
      parent.num_partitions(), parent.policy(),
      StrFormat("rebalanced(%s(%d),v%d)",
                PartitionPolicyName(parent.policy()),
                parent.num_partitions(), next_version),
      std::move(ownership));
  auto pg = std::make_shared<PartitionedGraph>(&parent.base(), p);
  pg->epoch_ = NextRebalanceEpoch();
  pg->version_ = next_version;
  return pg;
}

PartitionedGraph::PartitionedGraph(const PropertyGraph* base,
                                   const GraphPartitioner& partitioner)
    : base_(base),
      policy_(partitioner.policy()),
      partitioner_name_(partitioner.Name()) {
  if (!base_->finalized()) {
    throw std::logic_error(
        "PartitionedGraph: the base graph must be finalized before sharding");
  }
  const size_t nv = base_->NumVertices();
  const size_t nvt = base_->schema().NumVertexTypes();
  const size_t net = base_->schema().NumEdgeTypes();
  const int P = partitioner.num_partitions();
  parts_.resize(static_cast<size_t>(P));
  owner_of_.resize(nv);
  local_index_of_.resize(nv);
  cut_edges_of_type_.assign(net, 0);
  total_edges_of_type_.assign(net, 0);

  // Ownership map + owned vertex lists (ascending ids by construction).
  for (VertexId v = 0; v < nv; ++v) {
    const int p = partitioner.OwnerOf(v);
    owner_of_[v] = p;
    auto& part = parts_[static_cast<size_t>(p)];
    local_index_of_[v] = static_cast<uint32_t>(part.vertices.size());
    part.vertices.push_back(v);
  }

  const std::vector<std::string> prop_names = base_->VertexPropNames();
  for (auto& part : parts_) {
    const size_t n = part.vertices.size();
    part.vertices_of_type.assign(nvt, {});
    part.out_offsets.assign(n + 1, 0);
    part.in_offsets.assign(n + 1, 0);
    part.stats.vertices_of_type.assign(nvt, 0);
    part.stats.edges_of_type.assign(net, 0);
    part.stats.cut_edges_of_type.assign(net, 0);
    part.stats.num_vertices = n;
    for (const std::string& name : prop_names) {
      part.vertex_props[name].resize(n);
    }
  }

  // Local CSRs: out-adjacency by source owner (edge placement), in-
  // adjacency by destination owner. Copying the global store's per-vertex
  // spans preserves the (edge type, neighbor) sort order, so the
  // per-type range lookup works unchanged on local rows.
  for (size_t pi = 0; pi < parts_.size(); ++pi) {
    Partition& part = parts_[pi];
    const int p = static_cast<int>(pi);
    for (size_t l = 0; l < part.vertices.size(); ++l) {
      const VertexId v = part.vertices[l];
      const TypeId vt = base_->VertexType(v);
      part.vertices_of_type[vt].push_back(v);
      part.stats.vertices_of_type[vt]++;

      Span<const AdjEntry> out = base_->OutEdges(v);
      part.out_offsets[l + 1] = part.out_offsets[l] + out.size();
      for (const AdjEntry& a : out) {
        part.out_adj.push_back(a);
        part.stats.num_edges++;
        part.stats.edges_of_type[a.etype]++;
        total_edges_of_type_[a.etype]++;
        if (owner_of_[a.nbr] != p) {
          part.stats.cut_edges++;
          part.stats.cut_edges_of_type[a.etype]++;
          cut_edges_of_type_[a.etype]++;
        }
      }
      Span<const AdjEntry> in = base_->InEdges(v);
      part.in_offsets[l + 1] = part.in_offsets[l] + in.size();
      for (const AdjEntry& a : in) part.in_adj.push_back(a);
    }
    total_cut_edges_ += part.stats.cut_edges;
  }

  // Columnar property slices, gathered column-at-a-time: one name lookup
  // per (partition, property) instead of per vertex. Finalize padded the
  // base columns to |V|.
  for (const std::string& name : prop_names) {
    const std::vector<Value>* col = base_->VertexPropColumn(name);
    if (col == nullptr) continue;
    for (auto& part : parts_) {
      std::vector<Value>& slice = part.vertex_props[name];
      for (size_t l = 0; l < part.vertices.size(); ++l) {
        slice[l] = (*col)[part.vertices[l]];
      }
    }
  }
}

Span<const VertexId> PartitionedGraph::Vertices(int p) const {
  return parts_[static_cast<size_t>(p)].vertices;
}

Span<const VertexId> PartitionedGraph::VerticesOfType(int p, TypeId t) const {
  const Partition& part = parts_[static_cast<size_t>(p)];
  if (t >= part.vertices_of_type.size()) return {};
  return part.vertices_of_type[t];
}

Span<const AdjEntry> PartitionedGraph::OutEdges(int p, VertexId v) const {
  const Partition& part = parts_[static_cast<size_t>(p)];
  const uint32_t l = local_index_of_[v];
  return {part.out_adj.data() + part.out_offsets[l],
          part.out_offsets[l + 1] - part.out_offsets[l]};
}

Span<const AdjEntry> PartitionedGraph::OutEdges(int p, VertexId v,
                                                TypeId etype) const {
  return AdjTypeRange(OutEdges(p, v), etype);
}

Span<const AdjEntry> PartitionedGraph::InEdges(int p, VertexId v) const {
  const Partition& part = parts_[static_cast<size_t>(p)];
  const uint32_t l = local_index_of_[v];
  return {part.in_adj.data() + part.in_offsets[l],
          part.in_offsets[l + 1] - part.in_offsets[l]};
}

Span<const AdjEntry> PartitionedGraph::InEdges(int p, VertexId v,
                                               TypeId etype) const {
  return AdjTypeRange(InEdges(p, v), etype);
}

Value PartitionedGraph::GetVertexProp(int p, VertexId v,
                                      const std::string& name) const {
  const Partition& part = parts_[static_cast<size_t>(p)];
  auto it = part.vertex_props.find(name);
  if (it == part.vertex_props.end()) return Value();
  return it->second[local_index_of_[v]];
}

double PartitionedGraph::CutFraction() const {
  const size_t ne = base_->NumEdges();
  return ne == 0 ? 0.0
                 : static_cast<double>(total_cut_edges_) /
                       static_cast<double>(ne);
}

double PartitionedGraph::CutFraction(TypeId etype) const {
  if (etype >= total_edges_of_type_.size()) return 0.0;
  const size_t n = total_edges_of_type_[etype];
  return n == 0 ? 0.0
                : static_cast<double>(cut_edges_of_type_[etype]) /
                      static_cast<double>(n);
}

double PartitionedGraph::VertexBalance() const {
  const size_t n = base_->NumVertices();
  if (n == 0 || parts_.empty()) return 0.0;
  size_t max_v = 0;
  for (const Partition& p : parts_) {
    max_v = std::max(max_v, p.vertices.size());
  }
  const double mean =
      static_cast<double>(n) / static_cast<double>(parts_.size());
  return static_cast<double>(max_v) / mean;
}

std::string PartitionedGraph::Describe() const {
  std::string s = StrFormat(
      "partitioning: %s, %d partitions, edge-cut %zu/%zu (%.1f%%), "
      "vertex balance %.2f (max/mean), epoch %llu\n",
      partitioner_name_.c_str(), num_partitions(), total_cut_edges_,
      base_->NumEdges(), 100.0 * CutFraction(), VertexBalance(),
      static_cast<unsigned long long>(epoch_));
  for (size_t p = 0; p < parts_.size(); ++p) {
    const PartitionStats& st = parts_[p].stats;
    s += StrFormat("  p%zu: %zu vertices, %zu edges (%zu cut)\n", p,
                   st.num_vertices, st.num_edges, st.cut_edges);
  }
  return s;
}

}  // namespace gopt
