#include "src/store/rebalancer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gopt {

namespace {

/// max/mean of a non-negative load vector; 0 when the total is 0.
double Balance(const std::vector<double>& load) {
  if (load.empty()) return 0.0;
  double total = 0.0, mx = 0.0;
  for (double l : load) {
    total += l;
    mx = std::max(mx, l);
  }
  if (total <= 0.0) return 0.0;
  return mx / (total / static_cast<double>(load.size()));
}

}  // namespace

RebalancePlan PlanRebalance(const PartitionedGraph& store,
                            const std::vector<uint64_t>& observed_rows,
                            const RebalanceOptions& opts) {
  RebalancePlan plan;
  const size_t P = static_cast<size_t>(store.num_partitions());
  const size_t n = store.base().NumVertices();
  if (P <= 1 || n == 0) return plan;

  // Per-partition load: the observed executor rows when available,
  // otherwise the owned vertex counts (pure structural balancing).
  std::vector<double> load(P, 0.0);
  bool any = false;
  if (observed_rows.size() == P) {
    for (size_t p = 0; p < P; ++p) {
      load[p] = static_cast<double>(observed_rows[p]);
      any |= observed_rows[p] != 0;
    }
  }
  if (!any) {
    for (size_t p = 0; p < P; ++p) {
      load[p] = static_cast<double>(store.stats(static_cast<int>(p)).num_vertices);
    }
  }
  plan.rows_balance = Balance(load);
  if (!opts.force && plan.rows_balance <= opts.overload_ratio) return plan;

  // Apportion each partition's load to its owned vertices proportionally to
  // 1 + degree: the adjacency size drives scan and expansion rows, so a
  // partition's hottest vertices are its heaviest adjacency lists.
  const PropertyGraph& g = store.base();
  std::vector<double> vload(n, 0.0);
  std::vector<size_t> deg(n, 0);
  for (size_t p = 0; p < P; ++p) {
    Span<const VertexId> owned = store.Vertices(static_cast<int>(p));
    double weight = 0.0;
    for (VertexId v : owned) {
      deg[v] = g.OutEdges(v).size() + g.InEdges(v).size();
      weight += 1.0 + static_cast<double>(deg[v]);
    }
    if (weight <= 0.0) continue;
    for (VertexId v : owned) {
      vload[v] = load[p] * (1.0 + static_cast<double>(deg[v])) / weight;
    }
  }

  // Working state: current ownership, per-partition projected load and
  // vertex counts, and the vertex balance cap (same formula as the edge-cut
  // partitioner's, clamped to at least the even share).
  std::vector<int32_t> owner(n);
  std::vector<size_t> vcount(P, 0);
  for (VertexId v = 0; v < n; ++v) {
    owner[v] = static_cast<int32_t>(store.OwnerOf(v));
    vcount[static_cast<size_t>(owner[v])]++;
  }
  const size_t even = (n + P - 1) / P;
  const double cap_factor = std::max(1.0, opts.balance_cap);
  const size_t cap = std::max(
      even,
      static_cast<size_t>(std::ceil(cap_factor * static_cast<double>(even))));
  const double total_load = std::accumulate(load.begin(), load.end(), 0.0);
  const double mean = total_load / static_cast<double>(P);
  size_t budget = static_cast<size_t>(
      std::floor(opts.max_move_fraction * static_cast<double>(n)));

  // Candidates: every vertex of an overloaded partition, hottest first
  // (descending degree, ascending id on ties) — a global deterministic
  // order, so two engines with the same observations plan the same moves.
  std::vector<VertexId> cand;
  for (VertexId v = 0; v < n; ++v) {
    if (load[static_cast<size_t>(owner[v])] > mean) cand.push_back(v);
  }
  std::sort(cand.begin(), cand.end(), [&](VertexId a, VertexId b) {
    if (deg[a] != deg[b]) return deg[a] > deg[b];
    return a < b;
  });

  std::vector<size_t> nbr_cnt(P, 0);
  for (VertexId v : cand) {
    if (budget == 0) break;
    const size_t src = static_cast<size_t>(owner[v]);
    // Shed only while the source is still projected above the mean, and
    // never below it: moving past the mean just relocates the hotspot.
    if (load[src] - vload[v] < mean) continue;

    // Count the vertex's neighbors per partition (used as the tie-break
    // that keeps the migration's edge-cut price low).
    std::fill(nbr_cnt.begin(), nbr_cnt.end(), 0);
    for (const AdjEntry& a : g.OutEdges(v)) {
      nbr_cnt[static_cast<size_t>(owner[a.nbr])]++;
    }
    for (const AdjEntry& a : g.InEdges(v)) {
      nbr_cnt[static_cast<size_t>(owner[a.nbr])]++;
    }

    // Target: the least projected load with cap headroom; ties prefer the
    // partition owning more of v's neighbors, then the lowest id.
    int tgt = -1;
    for (size_t p = 0; p < P; ++p) {
      if (p == src || vcount[p] + 1 > cap) continue;
      if (tgt < 0) {
        tgt = static_cast<int>(p);
        continue;
      }
      const size_t t = static_cast<size_t>(tgt);
      if (load[p] < load[t] ||
          (load[p] == load[t] && nbr_cnt[p] > nbr_cnt[t])) {
        tgt = static_cast<int>(p);
      }
    }
    if (tgt < 0) continue;
    const size_t t = static_cast<size_t>(tgt);
    // A move must help: never push the target above the source.
    if (load[t] + vload[v] >= load[src]) continue;

    owner[v] = static_cast<int32_t>(tgt);
    load[src] -= vload[v];
    load[t] += vload[v];
    vcount[src]--;
    vcount[t]++;
    plan.moves++;
    budget--;
  }

  if (plan.moves > 0) plan.ownership = std::move(owner);
  return plan;
}

}  // namespace gopt
