#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/store/partitioner.h"

namespace gopt {

/// Cardinality statistics of one partition, computed at build time. These
/// are the partition-local counterpart of the global low-order statistics
/// (PropertyGraph::NumVerticesOfType etc.): the CBO's communication model
/// consumes the cut ratios (see CommProfile), Explain surfaces the raw
/// counts, and the differential tests hold their sums equal to the global
/// store's totals.
struct PartitionStats {
  size_t num_vertices = 0;
  /// Edges placed here (source-owner placement).
  size_t num_edges = 0;
  /// Of those, edges whose destination lives in another partition — this
  /// partition's contribution to the global edge-cut.
  size_t cut_edges = 0;
  std::vector<size_t> vertices_of_type;  ///< per vertex TypeId
  std::vector<size_t> edges_of_type;     ///< per edge TypeId (placed here)
  std::vector<size_t> cut_edges_of_type; ///< per edge TypeId (cut subset)
};

/// A finalized PropertyGraph sharded into P partitions: the real storage
/// layer behind the distributed executor's workers and the morsel
/// runtime's partition-granular scan morsels (docs/storage.md).
///
/// Per partition it holds:
///  - the owned vertex list (ascending global ids; local index = position),
///  - per-type owned vertex lists (the partition-local scan domains),
///  - a partition-local CSR over the owned vertices: out-adjacency by
///    source-owner edge placement, in-adjacency by destination owner —
///    entry order matches the global store (sorted by edge type, then
///    neighbor), so partition-local reads return byte-identical spans,
///  - columnar vertex-property slices indexed by local id,
///  - PartitionStats.
/// Plus the global vertex -> partition ownership map the exchange steps
/// consult.
///
/// Immutable after construction: any number of threads may read one
/// instance concurrently (the executors do).
class PartitionedGraph {
 public:
  /// Shards `base` (which must be finalized and must outlive this object)
  /// under `policy` into `partitions` shards.
  static std::shared_ptr<const PartitionedGraph> Build(
      const PropertyGraph* base, PartitionPolicy policy, int partitions);

  PartitionedGraph(const PropertyGraph* base,
                   const GraphPartitioner& partitioner);

  const PropertyGraph& base() const { return *base_; }
  int num_partitions() const { return static_cast<int>(parts_.size()); }
  PartitionPolicy policy() const { return policy_; }
  const std::string& partitioner_name() const { return partitioner_name_; }

  // ---- ownership ----

  /// Owner partition of `v` (O(1) map lookup, not a re-hash).
  int OwnerOf(VertexId v) const { return owner_of_[v]; }
  /// Position of `v` inside its owner's vertex list.
  uint32_t LocalIndexOf(VertexId v) const { return local_index_of_[v]; }

  // ---- partition-local reads ----

  /// All vertices owned by partition `p`, ascending global ids.
  Span<const VertexId> Vertices(int p) const;
  /// Owned vertices of one type (ascending global ids) — the partition's
  /// scan domain for a typed scan.
  Span<const VertexId> VerticesOfType(int p, TypeId t) const;

  /// Out edges of `v` read from partition `p`'s local CSR. `p` must own
  /// `v` (source-owner placement). Entry order equals the global store's.
  Span<const AdjEntry> OutEdges(int p, VertexId v) const;
  Span<const AdjEntry> OutEdges(int p, VertexId v, TypeId etype) const;
  /// In edges of `v` from `p`'s local in-index (destination-owner
  /// placement: every in-edge of an owned vertex is indexed locally).
  Span<const AdjEntry> InEdges(int p, VertexId v) const;
  Span<const AdjEntry> InEdges(int p, VertexId v, TypeId etype) const;

  /// Vertex property served from partition `p`'s columnar slice; `p` must
  /// own `v`. Null Value when the property is absent.
  Value GetVertexProp(int p, VertexId v, const std::string& name) const;

  // ---- owner-routed reads ----
  // The partition is resolved through the ownership map (one O(1) lookup)
  // — how the execution kernels read the sharded store without threading
  // partition context through every call site.

  Span<const AdjEntry> OutEdgesOf(VertexId v) const {
    return OutEdges(owner_of_[v], v);
  }
  Span<const AdjEntry> OutEdgesOf(VertexId v, TypeId etype) const {
    return OutEdges(owner_of_[v], v, etype);
  }
  Span<const AdjEntry> InEdgesOf(VertexId v) const {
    return InEdges(owner_of_[v], v);
  }
  Span<const AdjEntry> InEdgesOf(VertexId v, TypeId etype) const {
    return InEdges(owner_of_[v], v, etype);
  }
  Value GetVertexPropOf(VertexId v, const std::string& name) const {
    return GetVertexProp(owner_of_[v], v, name);
  }

  // ---- statistics ----

  const PartitionStats& stats(int p) const {
    return parts_[static_cast<size_t>(p)].stats;
  }
  /// Total cross-partition edges (sum of per-partition cut_edges).
  size_t total_cut_edges() const { return total_cut_edges_; }
  /// Edge-cut ratio: cut edges / total edges (0 when the graph is
  /// edgeless or single-partition).
  double CutFraction() const;
  /// Edge-cut ratio restricted to one edge type.
  double CutFraction(TypeId etype) const;

  /// One line per partition (vertex/edge/cut counts) for Explain.
  std::string Describe() const;

 private:
  struct Partition {
    std::vector<VertexId> vertices;  ///< owned, ascending global ids
    std::vector<std::vector<VertexId>> vertices_of_type;
    /// Local CSR, indexed by LocalIndexOf(v).
    std::vector<uint64_t> out_offsets;
    std::vector<AdjEntry> out_adj;
    std::vector<uint64_t> in_offsets;
    std::vector<AdjEntry> in_adj;
    /// Columnar vertex-property slices, indexed by local id.
    std::unordered_map<std::string, std::vector<Value>> vertex_props;
    PartitionStats stats;
  };

  const PropertyGraph* base_;
  PartitionPolicy policy_;
  std::string partitioner_name_;
  std::vector<Partition> parts_;
  std::vector<int32_t> owner_of_;         ///< |V| ownership map
  std::vector<uint32_t> local_index_of_;  ///< |V| local positions
  size_t total_cut_edges_ = 0;
  std::vector<size_t> cut_edges_of_type_;    ///< per edge TypeId, summed
  std::vector<size_t> total_edges_of_type_;  ///< per edge TypeId
};

}  // namespace gopt
