#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/store/partitioner.h"

namespace gopt {

/// Cardinality statistics of one partition, computed at build time. These
/// are the partition-local counterpart of the global low-order statistics
/// (PropertyGraph::NumVerticesOfType etc.): the CBO's communication model
/// consumes the cut ratios (see CommProfile), Explain surfaces the raw
/// counts, and the differential tests hold their sums equal to the global
/// store's totals.
struct PartitionStats {
  size_t num_vertices = 0;
  /// Edges placed here (source-owner placement).
  size_t num_edges = 0;
  /// Of those, edges whose destination lives in another partition — this
  /// partition's contribution to the global edge-cut.
  size_t cut_edges = 0;
  std::vector<size_t> vertices_of_type;  ///< per vertex TypeId
  std::vector<size_t> edges_of_type;     ///< per edge TypeId (placed here)
  std::vector<size_t> cut_edges_of_type; ///< per edge TypeId (cut subset)
};

/// A finalized PropertyGraph sharded into P partitions: the real storage
/// layer behind the distributed executor's workers and the morsel
/// runtime's partition-granular scan morsels (docs/storage.md).
///
/// Per partition it holds:
///  - the owned vertex list (ascending global ids; local index = position),
///  - per-type owned vertex lists (the partition-local scan domains),
///  - a partition-local CSR over the owned vertices: out-adjacency by
///    source-owner edge placement, in-adjacency by destination owner —
///    entry order matches the global store (sorted by edge type, then
///    neighbor), so partition-local reads return byte-identical spans,
///  - columnar vertex-property slices indexed by local id,
///  - PartitionStats.
/// Plus the global vertex -> partition ownership map the exchange steps
/// consult.
///
/// Immutable after construction: any number of threads may read one
/// instance concurrently (the executors do).
class PartitionedGraph {
 public:
  /// Shards `base` (which must be finalized and must outlive this object)
  /// under `policy` into `partitions` shards. `popts` tunes the kEdgeCut
  /// policy's refinement (ignored by hash/range).
  static std::shared_ptr<const PartitionedGraph> Build(
      const PropertyGraph* base, PartitionPolicy policy, int partitions,
      const PartitionerOptions& popts = {});

  /// Re-shards `base` under an explicit migrated ownership map — the
  /// rebalancer's constructor (src/store/rebalancer.h). The produced store
  /// reports `parent`'s policy, `parent.version() + 1` as its version, and
  /// a fresh process-unique nonzero epoch (policy-built stores share epoch
  /// 0: their content is fully determined by the fingerprinted options, so
  /// engines over the same graph may share plans; a migrated map is
  /// engine-local state and must never collide with another engine's).
  static std::shared_ptr<const PartitionedGraph> BuildRebalanced(
      const PartitionedGraph& parent, std::vector<int32_t> ownership);

  PartitionedGraph(const PropertyGraph* base,
                   const GraphPartitioner& partitioner);

  const PropertyGraph& base() const { return *base_; }
  int num_partitions() const { return static_cast<int>(parts_.size()); }
  PartitionPolicy policy() const { return policy_; }
  const std::string& partitioner_name() const { return partitioner_name_; }

  /// Ownership-map generation this store carries: 0 for any policy-built
  /// store (content determined by the fingerprinted options), a
  /// process-unique nonzero id for every rebalanced store. This is the
  /// partition epoch of the plan/result-cache scope
  /// (PlanCacheScope::partition_epoch): bumping it on migration re-keys an
  /// engine's cache lookups so in-flight queries finish on the old map
  /// while new Prepare/Execute calls see the new one (docs/storage.md).
  uint64_t epoch() const { return epoch_; }
  /// Human-facing generation counter: 1 for a policy-built store,
  /// incremented by every rebalance. Surfaced by Describe()/Explain.
  int version() const { return version_; }

  // ---- ownership ----

  /// Owner partition of `v` (O(1) map lookup, not a re-hash).
  int OwnerOf(VertexId v) const { return owner_of_[v]; }
  /// Position of `v` inside its owner's vertex list.
  uint32_t LocalIndexOf(VertexId v) const { return local_index_of_[v]; }

  // ---- partition-local reads ----

  /// All vertices owned by partition `p`, ascending global ids.
  Span<const VertexId> Vertices(int p) const;
  /// Owned vertices of one type (ascending global ids) — the partition's
  /// scan domain for a typed scan.
  Span<const VertexId> VerticesOfType(int p, TypeId t) const;

  /// Out edges of `v` read from partition `p`'s local CSR. `p` must own
  /// `v` (source-owner placement). Entry order equals the global store's.
  Span<const AdjEntry> OutEdges(int p, VertexId v) const;
  Span<const AdjEntry> OutEdges(int p, VertexId v, TypeId etype) const;
  /// In edges of `v` from `p`'s local in-index (destination-owner
  /// placement: every in-edge of an owned vertex is indexed locally).
  Span<const AdjEntry> InEdges(int p, VertexId v) const;
  Span<const AdjEntry> InEdges(int p, VertexId v, TypeId etype) const;

  /// Vertex property served from partition `p`'s columnar slice; `p` must
  /// own `v`. Null Value when the property is absent.
  Value GetVertexProp(int p, VertexId v, const std::string& name) const;

  // ---- owner-routed reads ----
  // The partition is resolved through the ownership map (one O(1) lookup)
  // — how the execution kernels read the sharded store without threading
  // partition context through every call site.

  Span<const AdjEntry> OutEdgesOf(VertexId v) const {
    return OutEdges(owner_of_[v], v);
  }
  Span<const AdjEntry> OutEdgesOf(VertexId v, TypeId etype) const {
    return OutEdges(owner_of_[v], v, etype);
  }
  Span<const AdjEntry> InEdgesOf(VertexId v) const {
    return InEdges(owner_of_[v], v);
  }
  Span<const AdjEntry> InEdgesOf(VertexId v, TypeId etype) const {
    return InEdges(owner_of_[v], v, etype);
  }
  Value GetVertexPropOf(VertexId v, const std::string& name) const {
    return GetVertexProp(owner_of_[v], v, name);
  }

  // ---- statistics ----

  const PartitionStats& stats(int p) const {
    return parts_[static_cast<size_t>(p)].stats;
  }
  /// Total cross-partition edges (sum of per-partition cut_edges).
  size_t total_cut_edges() const { return total_cut_edges_; }
  /// Edge-cut ratio: cut edges / total edges (0 when the graph is
  /// edgeless or single-partition).
  double CutFraction() const;
  /// Edge-cut ratio restricted to one edge type.
  double CutFraction(TypeId etype) const;

  /// Balance metric over owned vertices: max/mean vertices per partition
  /// (1.0 = perfectly balanced; 0 when the store is empty). The vertex-side
  /// skew signal the rebalancer caps and Explain surfaces.
  double VertexBalance() const;

  /// One line per partition (vertex/edge/cut counts) for Explain, plus the
  /// generation (version/epoch) and the vertex balance.
  std::string Describe() const;

 private:
  struct Partition {
    std::vector<VertexId> vertices;  ///< owned, ascending global ids
    std::vector<std::vector<VertexId>> vertices_of_type;
    /// Local CSR, indexed by LocalIndexOf(v).
    std::vector<uint64_t> out_offsets;
    std::vector<AdjEntry> out_adj;
    std::vector<uint64_t> in_offsets;
    std::vector<AdjEntry> in_adj;
    /// Columnar vertex-property slices, indexed by local id.
    std::unordered_map<std::string, std::vector<Value>> vertex_props;
    PartitionStats stats;
  };

  /// Process-unique nonzero ids for rebalanced generations (monotonic
  /// counter, never reused — the same contract as
  /// PropertyGraph::NextInstanceId).
  static uint64_t NextRebalanceEpoch();

  const PropertyGraph* base_;
  PartitionPolicy policy_;
  std::string partitioner_name_;
  uint64_t epoch_ = 0;
  int version_ = 1;
  std::vector<Partition> parts_;
  std::vector<int32_t> owner_of_;         ///< |V| ownership map
  std::vector<uint32_t> local_index_of_;  ///< |V| local positions
  size_t total_cut_edges_ = 0;
  std::vector<size_t> cut_edges_of_type_;    ///< per edge TypeId, summed
  std::vector<size_t> total_edges_of_type_;  ///< per edge TypeId
};

}  // namespace gopt
