#include "src/store/partitioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gopt {

const char* PartitionPolicyName(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kHash:
      return "hash";
    case PartitionPolicy::kRange:
      return "range";
    case PartitionPolicy::kEdgeCut:
      return "edgecut";
  }
  return "unknown";
}

std::string HashPartitioner::Name() const {
  return "hash(" + std::to_string(partitions_) + ")";
}

RangePartitioner::RangePartitioner(int partitions, size_t num_vertices)
    : GraphPartitioner(partitions), num_vertices_(num_vertices) {}

std::string RangePartitioner::Name() const {
  return "range(" + std::to_string(partitions_) + ")";
}

int RangePartitioner::OwnerOf(VertexId v) const {
  if (num_vertices_ == 0) return 0;
  if (v >= num_vertices_) return partitions_ - 1;
  // Inverse of the boundary formula b_p = p*n/P: owner is the largest p
  // with b_p <= v, i.e. floor(((v+1)*P - 1) / n), clamped for safety.
  uint64_t p = ((v + 1) * static_cast<uint64_t>(partitions_) - 1) /
               static_cast<uint64_t>(num_vertices_);
  if (p >= static_cast<uint64_t>(partitions_)) {
    p = static_cast<uint64_t>(partitions_) - 1;
  }
  return static_cast<int>(p);
}

EdgeCutPartitioner::EdgeCutPartitioner(int partitions, const PropertyGraph& g,
                                       PartitionerOptions opts)
    : GraphPartitioner(partitions) {
  if (!g.finalized()) {
    throw std::logic_error(
        "EdgeCutPartitioner: the graph must be finalized (refinement reads "
        "its CSR adjacency)");
  }
  const size_t n = g.NumVertices();
  const size_t P = static_cast<size_t>(partitions_);
  owner_.resize(n);

  // Seed from the hash policy, so the refinement below can only improve on
  // it and zero sweeps reproduce it exactly.
  HashPartitioner seed(partitions_);
  std::vector<size_t> sizes(P, 0);
  for (VertexId v = 0; v < n; ++v) {
    const int p = seed.OwnerOf(v);
    owner_[v] = p;
    sizes[static_cast<size_t>(p)]++;
  }
  if (P <= 1 || n == 0) return;

  // Per-partition balance cap on owned vertices. Clamped so the cap is
  // never below the perfectly balanced ceil(n/P) — a cap the seed itself
  // can violate would deadlock refinement into no-ops.
  const double cap_factor = std::max(1.0, opts.balance_cap);
  const size_t even = (n + P - 1) / P;
  const size_t cap = std::max(
      even, static_cast<size_t>(std::ceil(cap_factor *
                                          static_cast<double>(even))));

  // Greedy label propagation: visit vertices in ascending id order; move a
  // vertex to the partition owning the strict majority of its adjacency
  // (out + in, each incident edge counted once from this side) when the
  // target has cap headroom. Each applied move strictly decreases the
  // total edge-cut — the moved vertex's incident cut drops from
  // deg - cnt[cur] to deg - cnt[best] with cnt[best] > cnt[cur], and no
  // other vertex's incident cut changes mid-visit because moves are
  // applied immediately and later visits read the updated map. The
  // sequential order and the lowest-partition-id tie-break make the result
  // deterministic.
  std::vector<size_t> cnt(P, 0);
  std::vector<int> touched;
  touched.reserve(64);
  for (int sweep = 0; sweep < opts.refine_sweeps; ++sweep) {
    size_t sweep_moves = 0;
    for (VertexId v = 0; v < n; ++v) {
      for (const AdjEntry& a : g.OutEdges(v)) {
        const int p = owner_[a.nbr];
        if (cnt[static_cast<size_t>(p)]++ == 0) touched.push_back(p);
      }
      for (const AdjEntry& a : g.InEdges(v)) {
        const int p = owner_[a.nbr];
        if (cnt[static_cast<size_t>(p)]++ == 0) touched.push_back(p);
      }
      if (touched.empty()) continue;
      const int cur = owner_[v];
      int best = cur;
      size_t best_cnt = cnt[static_cast<size_t>(cur)];
      // Ascending partition-id scan => ties keep the lowest id.
      std::sort(touched.begin(), touched.end());
      for (const int p : touched) {
        if (p == cur) continue;
        const size_t c = cnt[static_cast<size_t>(p)];
        if (c > best_cnt && sizes[static_cast<size_t>(p)] + 1 <= cap) {
          best = p;
          best_cnt = c;
        }
      }
      if (best != cur) {
        owner_[v] = best;
        sizes[static_cast<size_t>(cur)]--;
        sizes[static_cast<size_t>(best)]++;
        sweep_moves++;
        moves_++;
      }
      for (const int p : touched) cnt[static_cast<size_t>(p)] = 0;
      touched.clear();
    }
    sweeps_run_ = sweep + 1;
    if (sweep_moves == 0) break;  // converged
  }
}

std::string EdgeCutPartitioner::Name() const {
  return "edgecut(" + std::to_string(partitions_) + ")";
}

std::unique_ptr<GraphPartitioner> MakePartitioner(
    PartitionPolicy policy, int partitions, const PropertyGraph& g,
    const PartitionerOptions& opts) {
  switch (policy) {
    case PartitionPolicy::kHash:
      return std::make_unique<HashPartitioner>(partitions);
    case PartitionPolicy::kRange:
      return std::make_unique<RangePartitioner>(partitions, g.NumVertices());
    case PartitionPolicy::kEdgeCut:
      return std::make_unique<EdgeCutPartitioner>(partitions, g, opts);
  }
  return std::make_unique<HashPartitioner>(partitions);
}

}  // namespace gopt
