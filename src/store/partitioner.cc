#include "src/store/partitioner.h"

namespace gopt {

const char* PartitionPolicyName(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kHash:
      return "hash";
    case PartitionPolicy::kRange:
      return "range";
  }
  return "unknown";
}

std::string HashPartitioner::Name() const {
  return "hash(" + std::to_string(partitions_) + ")";
}

RangePartitioner::RangePartitioner(int partitions, size_t num_vertices)
    : GraphPartitioner(partitions), num_vertices_(num_vertices) {}

std::string RangePartitioner::Name() const {
  return "range(" + std::to_string(partitions_) + ")";
}

int RangePartitioner::OwnerOf(VertexId v) const {
  if (num_vertices_ == 0) return 0;
  if (v >= num_vertices_) return partitions_ - 1;
  // Inverse of the boundary formula b_p = p*n/P: owner is the largest p
  // with b_p <= v, i.e. floor(((v+1)*P - 1) / n), clamped for safety.
  uint64_t p = ((v + 1) * static_cast<uint64_t>(partitions_) - 1) /
               static_cast<uint64_t>(num_vertices_);
  if (p >= static_cast<uint64_t>(partitions_)) {
    p = static_cast<uint64_t>(partitions_) - 1;
  }
  return static_cast<int>(p);
}

std::unique_ptr<GraphPartitioner> MakePartitioner(PartitionPolicy policy,
                                                  int partitions,
                                                  const PropertyGraph& g) {
  switch (policy) {
    case PartitionPolicy::kHash:
      return std::make_unique<HashPartitioner>(partitions);
    case PartitionPolicy::kRange:
      return std::make_unique<RangePartitioner>(partitions, g.NumVertices());
  }
  return std::make_unique<HashPartitioner>(partitions);
}

}  // namespace gopt
