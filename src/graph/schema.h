#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value.h"

namespace gopt {

/// Declares one property of a vertex or edge type.
struct PropertyDef {
  std::string name;
  Value::Kind type = Value::Kind::kNull;
};

/// A vertex type (label) in the graph schema.
struct VertexTypeDef {
  TypeId id = kInvalidTypeId;
  std::string name;
  std::vector<PropertyDef> properties;
};

/// An edge type (label) with its permitted endpoint vertex-type pairs.
/// An edge type may connect several (src, dst) type combinations, e.g.
/// LIKES: (Person, Post) and (Person, Comment).
struct EdgeTypeDef {
  TypeId id = kInvalidTypeId;
  std::string name;
  std::vector<std::pair<TypeId, TypeId>> endpoints;
  std::vector<PropertyDef> properties;
};

/// The graph schema: the vertex/edge type catalog plus the "schema graph"
/// connectivity queries used by type inference (paper Algorithm 1), where
/// N_S(t) denotes the out vertex-type neighbors of vertex type t and
/// N^E_S(t) its out edge types.
///
/// The reproduction assumes a schema-strict context (paper Section 4); for
/// schema-loose stores the paper extracts an equivalent schema from data
/// (Remark 6.1), which `ExtractSchemaFromData` in property_graph.h mirrors.
///
/// Thread-safety: the connectivity queries lazily build an internal
/// neighbor cache behind a mutex, so a schema that is no longer being
/// mutated (every engine-visible schema: PropertyGraph freezes its schema
/// conceptually after load) may be read from any number of threads
/// concurrently. Mutations (AddVertexType / AddEdgeType / AddEdgeEndpoint)
/// are NOT safe concurrently with reads.
class GraphSchema {
 public:
  GraphSchema() = default;
  // The lazy-cache mutex is not copyable; copies start with a cold cache.
  GraphSchema(const GraphSchema& o)
      : vertex_types_(o.vertex_types_), edge_types_(o.edge_types_) {}
  GraphSchema& operator=(const GraphSchema& o) {
    if (this != &o) {
      vertex_types_ = o.vertex_types_;
      edge_types_ = o.edge_types_;
      cache_valid_.store(false, std::memory_order_release);
    }
    return *this;
  }

  /// Registers a vertex type; returns its dense TypeId.
  TypeId AddVertexType(const std::string& name,
                       std::vector<PropertyDef> properties = {});

  /// Registers an edge type connecting the given (src, dst) vertex-type
  /// pairs; returns its dense TypeId.
  TypeId AddEdgeType(const std::string& name,
                     std::vector<std::pair<TypeId, TypeId>> endpoints,
                     std::vector<PropertyDef> properties = {});

  /// Adds an endpoint pair to an existing edge type.
  void AddEdgeEndpoint(TypeId edge_type, TypeId src, TypeId dst);

  std::optional<TypeId> FindVertexType(const std::string& name) const;
  std::optional<TypeId> FindEdgeType(const std::string& name) const;

  const VertexTypeDef& vertex_type(TypeId id) const { return vertex_types_[id]; }
  const EdgeTypeDef& edge_type(TypeId id) const { return edge_types_[id]; }
  size_t NumVertexTypes() const { return vertex_types_.size(); }
  size_t NumEdgeTypes() const { return edge_types_.size(); }

  const std::string& VertexTypeName(TypeId id) const {
    return vertex_types_[id].name;
  }
  const std::string& EdgeTypeName(TypeId id) const {
    return edge_types_[id].name;
  }

  /// All vertex type ids (used to expand AllType constraints).
  std::vector<TypeId> AllVertexTypes() const;
  /// All edge type ids.
  std::vector<TypeId> AllEdgeTypes() const;

  /// N_S(t): vertex types reachable from t by one out edge (deduplicated,
  /// sorted).
  const std::vector<TypeId>& OutVertexNeighbors(TypeId t) const;
  /// Vertex types that reach t by one out edge.
  const std::vector<TypeId>& InVertexNeighbors(TypeId t) const;
  /// N^E_S(t): edge types with src type t.
  const std::vector<TypeId>& OutEdgeTypes(TypeId t) const;
  /// Edge types with dst type t.
  const std::vector<TypeId>& InEdgeTypes(TypeId t) const;

  /// True if an edge of type `e` may connect src type `s` to dst type `d`.
  bool CanConnect(TypeId s, TypeId e, TypeId d) const;

  /// Destination types reachable from src type `s` via edge type `e`.
  std::vector<TypeId> DstTypesOf(TypeId s, TypeId e) const;
  /// Source types that reach dst type `d` via edge type `e`.
  std::vector<TypeId> SrcTypesOf(TypeId e, TypeId d) const;

 private:
  void InvalidateCache() const {
    cache_valid_.store(false, std::memory_order_release);
  }
  /// Double-checked build of the neighbor cache: safe to call from any
  /// number of reader threads (mutations must still be externally
  /// serialized against reads).
  void EnsureCache() const;
  void BuildCache() const;

  std::vector<VertexTypeDef> vertex_types_;
  std::vector<EdgeTypeDef> edge_types_;

  mutable std::mutex cache_mu_;
  mutable std::atomic<bool> cache_valid_{false};
  mutable std::vector<std::vector<TypeId>> out_vertex_nbrs_;
  mutable std::vector<std::vector<TypeId>> in_vertex_nbrs_;
  mutable std::vector<std::vector<TypeId>> out_edge_types_;
  mutable std::vector<std::vector<TypeId>> in_edge_types_;
};

}  // namespace gopt
