#include "src/graph/schema.h"

#include <algorithm>
#include <set>

namespace gopt {

TypeId GraphSchema::AddVertexType(const std::string& name,
                                  std::vector<PropertyDef> properties) {
  TypeId id = static_cast<TypeId>(vertex_types_.size());
  vertex_types_.push_back({id, name, std::move(properties)});
  InvalidateCache();
  return id;
}

TypeId GraphSchema::AddEdgeType(const std::string& name,
                                std::vector<std::pair<TypeId, TypeId>> endpoints,
                                std::vector<PropertyDef> properties) {
  TypeId id = static_cast<TypeId>(edge_types_.size());
  edge_types_.push_back({id, name, std::move(endpoints), std::move(properties)});
  InvalidateCache();
  return id;
}

void GraphSchema::AddEdgeEndpoint(TypeId edge_type, TypeId src, TypeId dst) {
  auto& eps = edge_types_[edge_type].endpoints;
  if (std::find(eps.begin(), eps.end(), std::make_pair(src, dst)) == eps.end()) {
    eps.emplace_back(src, dst);
  }
  InvalidateCache();
}

std::optional<TypeId> GraphSchema::FindVertexType(const std::string& name) const {
  for (const auto& vt : vertex_types_) {
    if (vt.name == name) return vt.id;
  }
  return std::nullopt;
}

std::optional<TypeId> GraphSchema::FindEdgeType(const std::string& name) const {
  for (const auto& et : edge_types_) {
    if (et.name == name) return et.id;
  }
  return std::nullopt;
}

std::vector<TypeId> GraphSchema::AllVertexTypes() const {
  std::vector<TypeId> r(vertex_types_.size());
  for (size_t i = 0; i < r.size(); ++i) r[i] = static_cast<TypeId>(i);
  return r;
}

std::vector<TypeId> GraphSchema::AllEdgeTypes() const {
  std::vector<TypeId> r(edge_types_.size());
  for (size_t i = 0; i < r.size(); ++i) r[i] = static_cast<TypeId>(i);
  return r;
}

void GraphSchema::BuildCache() const {
  size_t n = vertex_types_.size();
  out_vertex_nbrs_.assign(n, {});
  in_vertex_nbrs_.assign(n, {});
  out_edge_types_.assign(n, {});
  in_edge_types_.assign(n, {});
  std::vector<std::set<TypeId>> ov(n), iv(n), oe(n), ie(n);
  for (const auto& et : edge_types_) {
    for (auto [s, d] : et.endpoints) {
      ov[s].insert(d);
      iv[d].insert(s);
      oe[s].insert(et.id);
      ie[d].insert(et.id);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    out_vertex_nbrs_[i].assign(ov[i].begin(), ov[i].end());
    in_vertex_nbrs_[i].assign(iv[i].begin(), iv[i].end());
    out_edge_types_[i].assign(oe[i].begin(), oe[i].end());
    in_edge_types_[i].assign(ie[i].begin(), ie[i].end());
  }
  cache_valid_.store(true, std::memory_order_release);
}

void GraphSchema::EnsureCache() const {
  if (cache_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!cache_valid_.load(std::memory_order_relaxed)) BuildCache();
}

const std::vector<TypeId>& GraphSchema::OutVertexNeighbors(TypeId t) const {
  EnsureCache();
  return out_vertex_nbrs_[t];
}

const std::vector<TypeId>& GraphSchema::InVertexNeighbors(TypeId t) const {
  EnsureCache();
  return in_vertex_nbrs_[t];
}

const std::vector<TypeId>& GraphSchema::OutEdgeTypes(TypeId t) const {
  EnsureCache();
  return out_edge_types_[t];
}

const std::vector<TypeId>& GraphSchema::InEdgeTypes(TypeId t) const {
  EnsureCache();
  return in_edge_types_[t];
}

bool GraphSchema::CanConnect(TypeId s, TypeId e, TypeId d) const {
  const auto& eps = edge_types_[e].endpoints;
  return std::find(eps.begin(), eps.end(), std::make_pair(s, d)) != eps.end();
}

std::vector<TypeId> GraphSchema::DstTypesOf(TypeId s, TypeId e) const {
  std::set<TypeId> r;
  for (auto [es, ed] : edge_types_[e].endpoints) {
    if (es == s) r.insert(ed);
  }
  return {r.begin(), r.end()};
}

std::vector<TypeId> GraphSchema::SrcTypesOf(TypeId e, TypeId d) const {
  std::set<TypeId> r;
  for (auto [es, ed] : edge_types_[e].endpoints) {
    if (ed == d) r.insert(es);
  }
  return {r.begin(), r.end()};
}

}  // namespace gopt
