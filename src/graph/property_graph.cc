#include "src/graph/property_graph.h"

#include <atomic>

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gopt {

uint64_t PropertyGraph::NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

VertexId PropertyGraph::AddVertex(TypeId type) {
  VertexId id = vertex_types_of_.size();
  vertex_types_of_.push_back(type);
  finalized_ = false;
  return id;
}

EdgeId PropertyGraph::AddEdge(VertexId src, VertexId dst, TypeId type) {
  EdgeId id = edge_src_.size();
  edge_src_.push_back(src);
  edge_dst_.push_back(dst);
  edge_types_of_.push_back(type);
  finalized_ = false;
  return id;
}

void PropertyGraph::SetVertexProp(VertexId v, const std::string& name,
                                  Value value) {
  auto& col = vertex_props_[name];
  if (col.size() <= v) col.resize(vertex_types_of_.size());
  if (col.size() <= v) col.resize(v + 1);
  col[v] = std::move(value);
}

void PropertyGraph::SetEdgeProp(EdgeId e, const std::string& name, Value value) {
  auto& col = edge_props_[name];
  if (col.size() <= e) col.resize(edge_src_.size());
  if (col.size() <= e) col.resize(e + 1);
  col[e] = std::move(value);
}

void PropertyGraph::Finalize() {
  // Idempotence guard: AddVertex/AddEdge reset the flag, so a second call
  // with no intervening mutation has nothing to do — without this it
  // would rebuild and re-sort the whole CSR over the already-sorted state.
  if (finalized_) return;
  const size_t nv = NumVertices();
  const size_t ne = NumEdges();

  // Build out-CSR.
  out_offsets_.assign(nv + 1, 0);
  for (size_t e = 0; e < ne; ++e) out_offsets_[edge_src_[e] + 1]++;
  for (size_t v = 0; v < nv; ++v) out_offsets_[v + 1] += out_offsets_[v];
  out_adj_.resize(ne);
  {
    std::vector<uint64_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
    for (size_t e = 0; e < ne; ++e) {
      out_adj_[cursor[edge_src_[e]]++] = {edge_dst_[e], e, edge_types_of_[e]};
    }
  }
  // Build in-CSR.
  in_offsets_.assign(nv + 1, 0);
  for (size_t e = 0; e < ne; ++e) in_offsets_[edge_dst_[e] + 1]++;
  for (size_t v = 0; v < nv; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_adj_.resize(ne);
  {
    std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (size_t e = 0; e < ne; ++e) {
      in_adj_[cursor[edge_dst_[e]]++] = {edge_src_[e], e, edge_types_of_[e]};
    }
  }
  auto by_type_then_nbr = [](const AdjEntry& a, const AdjEntry& b) {
    return a.etype != b.etype ? a.etype < b.etype : a.nbr < b.nbr;
  };
  for (size_t v = 0; v < nv; ++v) {
    std::sort(out_adj_.begin() + out_offsets_[v],
              out_adj_.begin() + out_offsets_[v + 1], by_type_then_nbr);
    std::sort(in_adj_.begin() + in_offsets_[v],
              in_adj_.begin() + in_offsets_[v + 1], by_type_then_nbr);
  }

  // Per-type vertex lists and edge counts.
  vertices_of_type_.assign(schema_.NumVertexTypes(), {});
  for (size_t v = 0; v < nv; ++v) {
    vertices_of_type_[vertex_types_of_[v]].push_back(v);
  }
  edges_of_type_count_.assign(schema_.NumEdgeTypes(), 0);
  for (size_t e = 0; e < ne; ++e) edges_of_type_count_[edge_types_of_[e]]++;

  // Pad property columns to full length.
  for (auto& [name, col] : vertex_props_) col.resize(nv);
  for (auto& [name, col] : edge_props_) col.resize(ne);

  finalized_ = true;
}

Span<const AdjEntry> PropertyGraph::OutEdges(VertexId v) const {
  CheckFinalized();
  return {out_adj_.data() + out_offsets_[v],
          out_offsets_[v + 1] - out_offsets_[v]};
}

Span<const AdjEntry> PropertyGraph::InEdges(VertexId v) const {
  CheckFinalized();
  return {in_adj_.data() + in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]};
}

Span<const AdjEntry> AdjTypeRange(Span<const AdjEntry> all, TypeId t) {
  auto lo = std::lower_bound(
      all.begin(), all.end(), t,
      [](const AdjEntry& a, TypeId ty) { return a.etype < ty; });
  auto hi = std::upper_bound(
      all.begin(), all.end(), t,
      [](TypeId ty, const AdjEntry& a) { return ty < a.etype; });
  return {&*lo, static_cast<size_t>(hi - lo)};
}

void SplitTypeSubSpans(Span<const AdjEntry> all,
                       std::vector<Span<const AdjEntry>>* out) {
  size_t begin = 0;
  for (size_t i = 1; i <= all.size(); ++i) {
    if (i == all.size() || all[i].etype != all[begin].etype) {
      out->push_back(all.subspan(begin, i - begin));
      begin = i;
    }
  }
}

Span<const AdjEntry> PropertyGraph::OutEdges(VertexId v, TypeId t) const {
  return AdjTypeRange(OutEdges(v), t);
}

Span<const AdjEntry> PropertyGraph::InEdges(VertexId v, TypeId t) const {
  return AdjTypeRange(InEdges(v), t);
}

Span<const VertexId> PropertyGraph::VerticesOfType(TypeId t) const {
  CheckFinalized();
  if (t >= vertices_of_type_.size()) return {};
  return vertices_of_type_[t];
}

Value PropertyGraph::GetVertexProp(VertexId v, const std::string& name) const {
  auto it = vertex_props_.find(name);
  if (it == vertex_props_.end() || v >= it->second.size()) return Value();
  return it->second[v];
}

Value PropertyGraph::GetEdgeProp(EdgeId e, const std::string& name) const {
  auto it = edge_props_.find(name);
  if (it == edge_props_.end() || e >= it->second.size()) return Value();
  return it->second[e];
}

std::vector<std::string> PropertyGraph::VertexPropNames() const {
  std::vector<std::string> names;
  names.reserve(vertex_props_.size());
  for (const auto& [name, col] : vertex_props_) names.push_back(name);
  return names;
}

const std::vector<Value>* PropertyGraph::VertexPropColumn(
    const std::string& name) const {
  auto it = vertex_props_.find(name);
  return it == vertex_props_.end() ? nullptr : &it->second;
}

size_t PropertyGraph::NumVerticesOfType(TypeId t) const {
  if (t >= vertices_of_type_.size()) return 0;
  return vertices_of_type_[t].size();
}

size_t PropertyGraph::NumEdgesOfType(TypeId t) const {
  if (t >= edges_of_type_count_.size()) return 0;
  return edges_of_type_count_[t];
}

GraphSchema ExtractSchemaFromData(const PropertyGraph& g) {
  const GraphSchema& base = g.schema();
  GraphSchema out;
  for (size_t t = 0; t < base.NumVertexTypes(); ++t) {
    out.AddVertexType(base.vertex_type(static_cast<TypeId>(t)).name,
                      base.vertex_type(static_cast<TypeId>(t)).properties);
  }
  for (size_t t = 0; t < base.NumEdgeTypes(); ++t) {
    out.AddEdgeType(base.edge_type(static_cast<TypeId>(t)).name, {},
                    base.edge_type(static_cast<TypeId>(t)).properties);
  }
  // Discover the endpoint pairs actually present in the data.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    out.AddEdgeEndpoint(g.EdgeType(e), g.VertexType(g.EdgeSrc(e)),
                        g.VertexType(g.EdgeDst(e)));
  }
  return out;
}

}  // namespace gopt
