#pragma once

#include "src/common/span.h"
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/value.h"
#include "src/graph/schema.h"

namespace gopt {

/// One adjacency-list entry: the neighbor vertex, the edge id and the edge
/// type. Out- and in-lists are sorted by (edge type, neighbor) so that (a)
/// a per-edge-type range is a contiguous span and (b) two per-type ranges
/// can be intersected by a sorted merge — the primitive behind
/// ExpandIntersect (worst-case-optimal join style expansion).
struct AdjEntry {
  VertexId nbr;
  EdgeId eid;
  TypeId etype;
};

/// The contiguous per-edge-type range of a (type, nbr)-sorted adjacency
/// span — shared by the global store's and the sharded store's per-type
/// lookups so the two can never diverge on the sort contract.
Span<const AdjEntry> AdjTypeRange(Span<const AdjEntry> all, TypeId t);

/// Splits a (type, nbr)-sorted adjacency span into its per-type sub-spans
/// (each sorted by neighbor) and appends them to `*out` — one linear pass,
/// no per-type binary searches. The span iteration primitive feeding the
/// vectorized sort-free intersection (src/exec/vectorized.h) when an arm
/// has no type constraint.
void SplitTypeSubSpans(Span<const AdjEntry> all,
                       std::vector<Span<const AdjEntry>>* out);

/// In-memory property graph store (the data substrate both simulated
/// backends execute against).
///
/// Usage: AddVertex/AddEdge/Set*Prop during loading, then Finalize() to
/// build the CSR indexes. Reads before Finalize() are invalid.
class PropertyGraph {
 public:
  explicit PropertyGraph(GraphSchema schema) : schema_(std::move(schema)) {}

  // Non-copyable/movable: instance_id() is this object's process-unique
  // identity (the plan-cache graph scope); a copy sharing the id could be
  // served the original's cached plans after diverging. Graphs are passed
  // by pointer / shared_ptr throughout.
  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  // ---- construction ----

  /// Adds a vertex of `type`; returns its dense id.
  VertexId AddVertex(TypeId type);
  /// Adds a directed edge; returns its dense id.
  EdgeId AddEdge(VertexId src, VertexId dst, TypeId type);
  /// Sets a vertex property (columnar storage keyed by property name).
  /// Like all mutation, intended for the loading phase: consumers built
  /// over a finalized graph snapshot derived state (Glogue statistics,
  /// cached plans, a PartitionedGraph's columnar slices) and will not see
  /// writes made after their construction.
  void SetVertexProp(VertexId v, const std::string& name, Value value);
  /// Sets an edge property.
  void SetEdgeProp(EdgeId e, const std::string& name, Value value);
  /// Builds CSR adjacency and per-type vertex lists. Must be called after
  /// loading and before reads. Idempotent: a second call with no
  /// intervening AddVertex/AddEdge is a no-op instead of rebuilding (and
  /// re-sorting) the CSR over the already-finalized state.
  void Finalize();

  // ---- topology ----

  size_t NumVertices() const { return vertex_types_of_.size(); }
  size_t NumEdges() const { return edge_src_.size(); }
  bool finalized() const { return finalized_; }

  /// Process-unique identity of this graph, assigned from a monotonic
  /// counter at construction. Used as the plan-cache graph scope — unlike
  /// the object's address it is never reused after destruction, so a
  /// recycled allocation can't be served another graph's cached plans.
  uint64_t instance_id() const { return instance_id_; }

  TypeId VertexType(VertexId v) const { return vertex_types_of_[v]; }
  TypeId EdgeType(EdgeId e) const { return edge_types_of_[e]; }
  VertexId EdgeSrc(EdgeId e) const { return edge_src_[e]; }
  VertexId EdgeDst(EdgeId e) const { return edge_dst_[e]; }
  EdgeRef MakeEdgeRef(EdgeId e) const {
    return EdgeRef{e, edge_src_[e], edge_dst_[e], edge_types_of_[e]};
  }

  /// All out edges of v (sorted by edge type, then neighbor id).
  Span<const AdjEntry> OutEdges(VertexId v) const;
  /// All in edges of v.
  Span<const AdjEntry> InEdges(VertexId v) const;
  /// Debug-build guard used by the index reads: throws std::logic_error
  /// when the CSR has not been (re)built since the last mutation. Release
  /// builds compile it away — reads there are undefined as before.
  void CheckFinalized() const {
#ifndef NDEBUG
    if (!finalized_) {
      throw std::logic_error(
          "PropertyGraph: read before Finalize() — call Finalize() after "
          "loading (AddVertex/AddEdge invalidate the CSR indexes)");
    }
#endif
  }
  /// Out edges of v restricted to one edge type (contiguous span).
  Span<const AdjEntry> OutEdges(VertexId v, TypeId etype) const;
  /// In edges of v restricted to one edge type.
  Span<const AdjEntry> InEdges(VertexId v, TypeId etype) const;

  size_t OutDegree(VertexId v) const { return OutEdges(v).size(); }
  size_t InDegree(VertexId v) const { return InEdges(v).size(); }

  /// All vertices of one type (dense scan list).
  Span<const VertexId> VerticesOfType(TypeId t) const;

  // ---- properties ----

  /// Returns the property value or a null Value if absent.
  Value GetVertexProp(VertexId v, const std::string& name) const;
  Value GetEdgeProp(EdgeId e, const std::string& name) const;
  /// Names of every vertex-property column (unordered-map order is
  /// unspecified; callers needing determinism sort). Used by the sharded
  /// store to slice columnar properties per partition.
  std::vector<std::string> VertexPropNames() const;
  /// The raw column of one vertex property, or nullptr when absent —
  /// one name lookup for a whole-column read (Finalize pads columns to
  /// |V|, but pre-Finalize columns may be shorter).
  const std::vector<Value>* VertexPropColumn(const std::string& name) const;

  // ---- statistics (low-order) ----

  size_t NumVerticesOfType(TypeId t) const;
  size_t NumEdgesOfType(TypeId t) const;

  const GraphSchema& schema() const { return schema_; }
  GraphSchema* mutable_schema() { return &schema_; }

 private:
  static uint64_t NextInstanceId();

  GraphSchema schema_;
  bool finalized_ = false;
  uint64_t instance_id_ = NextInstanceId();

  std::vector<TypeId> vertex_types_of_;
  std::vector<VertexId> edge_src_;
  std::vector<VertexId> edge_dst_;
  std::vector<TypeId> edge_types_of_;

  // CSR adjacency, built by Finalize().
  std::vector<uint64_t> out_offsets_;
  std::vector<AdjEntry> out_adj_;
  std::vector<uint64_t> in_offsets_;
  std::vector<AdjEntry> in_adj_;

  std::vector<std::vector<VertexId>> vertices_of_type_;
  std::vector<size_t> edges_of_type_count_;

  // Columnar property stores: property name -> column of |V| (or |E|) values.
  std::unordered_map<std::string, std::vector<Value>> vertex_props_;
  std::unordered_map<std::string, std::vector<Value>> edge_props_;
};

/// Extracts a schema from raw typed data, mirroring how the paper handles
/// schema-loose systems such as Neo4j (Remark 6.1): the vertex/edge types
/// and endpoint pairs actually present in `g` become the schema used for
/// type inference. Returns the refined schema (type names are preserved).
GraphSchema ExtractSchemaFromData(const PropertyGraph& g);

}  // namespace gopt
