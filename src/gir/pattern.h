#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/gir/expr.h"
#include "src/gir/type_constraint.h"

namespace gopt {

/// Direction of a pattern edge relative to its `src` endpoint.
enum class Direction { kOut, kIn, kBoth };

/// Path-expansion semantics for variable-length pattern edges (paper
/// Section 5.1): Arbitrary (no constraint), Simple (no repeated vertex),
/// Trail (no repeated edge).
enum class PathSemantics { kArbitrary, kSimple, kTrail };

/// A vertex of a query pattern.
struct PatternVertex {
  int id = -1;             ///< Stable id, preserved across subpatterns.
  std::string alias;       ///< Tag binding the matched vertex in rows.
  TypeConstraint tc;       ///< Basic/Union/All type constraint.
  std::vector<ExprPtr> predicates;  ///< Filters pushed into the pattern.
  double selectivity = 1.0;         ///< Estimated predicate selectivity.
};

/// An edge of a query pattern. Direction kOut means src->dst in the data
/// graph; kBoth matches either orientation. min/max_hops > 1 turns the edge
/// into an EXPAND_PATH of the given semantics.
struct PatternEdge {
  int id = -1;
  int src = -1;  ///< PatternVertex id.
  int dst = -1;  ///< PatternVertex id.
  std::string alias;
  TypeConstraint tc;
  std::vector<ExprPtr> predicates;
  Direction dir = Direction::kOut;
  int min_hops = 1;
  int max_hops = 1;
  PathSemantics semantics = PathSemantics::kArbitrary;
  double selectivity = 1.0;

  bool IsPath() const { return !(min_hops == 1 && max_hops == 1); }
};

/// A query pattern P = (V_P, E_P): a small connected typed graph with
/// aliases and embedded predicates. Vertex/edge ids are stable so that
/// subpatterns taken during CBO can be related back to the original.
class Pattern {
 public:
  /// Adds a vertex; if id < 0 assigns the next free id. Returns the id.
  int AddVertex(std::string alias, TypeConstraint tc = TypeConstraint::All(),
                int id = -1);
  /// Adds an edge between existing vertex ids; returns the edge id.
  int AddEdge(int src, int dst, std::string alias,
              TypeConstraint tc = TypeConstraint::All(),
              Direction dir = Direction::kOut, int id = -1);

  size_t NumVertices() const { return vertices_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  bool Empty() const { return vertices_.empty(); }

  const std::vector<PatternVertex>& vertices() const { return vertices_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }
  std::vector<PatternVertex>& mutable_vertices() { return vertices_; }
  std::vector<PatternEdge>& mutable_edges() { return edges_; }

  /// Vertex/edge accessors by stable id (asserts existence).
  const PatternVertex& VertexById(int id) const;
  PatternVertex& VertexById(int id);
  const PatternEdge& EdgeById(int id) const;
  PatternEdge& EdgeById(int id);
  bool HasVertex(int id) const;

  const PatternVertex* FindVertexByAlias(const std::string& alias) const;
  const PatternEdge* FindEdgeByAlias(const std::string& alias) const;

  /// Ids of edges incident to vertex `v`.
  std::vector<int> IncidentEdges(int v) const;
  /// Neighbor vertex ids of `v` (ignoring direction).
  std::vector<int> NeighborVertices(int v) const;

  /// True if the pattern is connected (ignoring direction). The empty
  /// pattern counts as connected.
  bool IsConnected() const;
  /// True if removing vertex `v` (and incident edges) keeps it connected.
  bool IsConnectedWithout(int v) const;

  /// The subpattern induced by a set of edge ids (vertices = endpoints).
  Pattern SubpatternByEdges(const std::vector<int>& edge_ids) const;
  /// Copy of the pattern without vertex `v` and its incident edges.
  Pattern WithoutVertex(int v) const;
  /// Single-vertex subpattern.
  Pattern SingleVertex(int v) const;

  /// Vertex ids shared with `other` (matched by id).
  std::vector<int> CommonVertices(const Pattern& other) const;

  /// All aliases bound by this pattern (vertices, edges, paths).
  std::vector<std::string> Aliases() const;

  std::string ToString(const GraphSchema& schema) const;

  /// Whether every vertex and edge constraint is a BasicType (needed for a
  /// direct Glogue lookup, paper Section 6.3.1).
  bool AllBasicTypes() const;

  /// True if any edge is a variable-length path expansion.
  bool HasPathEdge() const;

 private:
  std::vector<PatternVertex> vertices_;
  std::vector<PatternEdge> edges_;
  int next_vertex_id_ = 0;
  int next_edge_id_ = 0;
};

}  // namespace gopt
