#include "src/gir/type_constraint.h"

#include <algorithm>

namespace gopt {

TypeConstraint TypeConstraint::Union(std::vector<TypeId> ts) {
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  TypeConstraint c;
  c.all_ = false;
  c.types_ = std::move(ts);
  return c;
}

bool TypeConstraint::Matches(TypeId t) const {
  if (all_) return true;
  return std::binary_search(types_.begin(), types_.end(), t);
}

std::vector<TypeId> TypeConstraint::Resolve(
    const std::vector<TypeId>& universe) const {
  return all_ ? universe : types_;
}

TypeConstraint TypeConstraint::Intersect(const TypeConstraint& other) const {
  if (all_) return other;
  if (other.all_) return *this;
  TypeConstraint c;
  c.all_ = false;
  std::set_intersection(types_.begin(), types_.end(), other.types_.begin(),
                        other.types_.end(), std::back_inserter(c.types_));
  return c;
}

bool TypeConstraint::operator==(const TypeConstraint& other) const {
  return all_ == other.all_ && types_ == other.types_;
}

std::string TypeConstraint::ToString(const GraphSchema& schema,
                                     bool is_vertex) const {
  if (all_) return "AllType";
  if (types_.empty()) return "None";
  std::string s;
  for (size_t i = 0; i < types_.size(); ++i) {
    if (i > 0) s += "|";
    s += is_vertex ? schema.VertexTypeName(types_[i])
                   : schema.EdgeTypeName(types_[i]);
  }
  return s;
}

}  // namespace gopt
