#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/gir/logical_op.h"

namespace gopt {

/// Which endpoint of the pending edge the next GetV binds.
enum class VertexEnd { kStart, kEnd };

/// Fluent builder for one MATCH_PATTERN, mirroring the paper's Section 5.2
/// snippet:
///
///   GraphIrBuilder b;
///   auto p = b.PatternStart()
///       .GetV("v1", TypeConstraint::All())
///       .ExpandE("v1", "e1", TypeConstraint::All(), Direction::kOut)
///       .GetV("e1", "v2", TypeConstraint::All(), VertexEnd::kEnd)
///       .PatternEnd();
///
/// Aliases are shared: re-using an alias in GetV refers to the same pattern
/// vertex, which is how chains are stitched into general graphs. Anonymous
/// vertices/edges get internal aliases prefixed with '$'.
class PatternBuilder {
 public:
  /// Binds (or re-references) a source vertex.
  PatternBuilder& GetV(const std::string& alias,
                       TypeConstraint tc = TypeConstraint::All());

  /// Starts an edge expansion from the vertex bound to `from_tag`.
  PatternBuilder& ExpandE(const std::string& from_tag, const std::string& alias,
                          TypeConstraint tc = TypeConstraint::All(),
                          Direction dir = Direction::kOut);

  /// Starts a variable-length path expansion of `min..max` hops.
  PatternBuilder& ExpandPath(const std::string& from_tag,
                             const std::string& alias, TypeConstraint tc,
                             Direction dir, int min_hops, int max_hops,
                             PathSemantics semantics = PathSemantics::kArbitrary);

  /// Closes the pending edge at the given endpoint vertex.
  PatternBuilder& GetV(const std::string& edge_tag, const std::string& alias,
                       TypeConstraint tc, VertexEnd end);

  /// Attaches a predicate to the vertex bound to `alias`.
  PatternBuilder& WhereVertex(const std::string& alias, ExprPtr pred);
  /// Attaches a predicate to the edge bound to `alias`.
  PatternBuilder& WhereEdge(const std::string& alias, ExprPtr pred);

  /// Finishes the pattern. A disconnected pattern is split into connected
  /// components combined by cartesian JOINs (paper Section 3).
  LogicalOpPtr PatternEnd();

  /// Access to the in-construction pattern (used by parsers).
  Pattern& pattern() { return pattern_; }

 private:
  friend class GraphIrBuilder;
  int VertexFor(const std::string& alias, const TypeConstraint& tc);

  Pattern pattern_;
  std::map<std::string, int> alias_to_vid_;
  int anon_counter_ = 0;

  struct PendingEdge {
    int from_vid;
    std::string alias;
    TypeConstraint tc;
    Direction dir;
    int min_hops, max_hops;
    PathSemantics semantics;
  };
  std::optional<PendingEdge> pending_;
};

/// The high-level GraphIrBuilder interface (paper Section 5): assembles the
/// language-independent GIR logical plan that all frontends lower into.
class GraphIrBuilder {
 public:
  PatternBuilder PatternStart() { return PatternBuilder(); }

  /// Wraps an already-built Pattern as a MATCH_PATTERN leaf.
  LogicalOpPtr Match(Pattern p);

  /// Like Match, but a disconnected pattern is split into connected
  /// components combined by cartesian JOINs (paper Section 3: matching a
  /// disconnected pattern is the cartesian product of its components).
  /// Frontends lower MATCH clauses through this entry point.
  LogicalOpPtr MatchComponents(Pattern p);

  LogicalOpPtr Join(LogicalOpPtr left, LogicalOpPtr right,
                    std::vector<std::string> keys,
                    JoinKind kind = JoinKind::kInner);
  LogicalOpPtr Select(LogicalOpPtr in, ExprPtr predicate);
  LogicalOpPtr Project(LogicalOpPtr in, std::vector<ProjectItem> items,
                       bool append = false);
  LogicalOpPtr Group(LogicalOpPtr in, std::vector<ProjectItem> keys,
                     std::vector<AggCall> aggs);
  LogicalOpPtr Order(LogicalOpPtr in, std::vector<SortItem> keys,
                     int64_t limit = -1);
  LogicalOpPtr Limit(LogicalOpPtr in, int64_t n);
  LogicalOpPtr Dedup(LogicalOpPtr in, std::vector<std::string> tags);
  LogicalOpPtr Union(LogicalOpPtr left, LogicalOpPtr right,
                     bool distinct = false);
  LogicalOpPtr Unfold(LogicalOpPtr in, std::string tag, std::string alias);
};

}  // namespace gopt
