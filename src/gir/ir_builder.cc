#include "src/gir/ir_builder.h"

#include <set>
#include <stdexcept>

namespace gopt {

int PatternBuilder::VertexFor(const std::string& alias,
                              const TypeConstraint& tc) {
  std::string key = alias;
  if (key.empty()) key = "$v" + std::to_string(anon_counter_++);
  auto it = alias_to_vid_.find(key);
  if (it != alias_to_vid_.end()) {
    // Re-reference: tighten the type constraint if one was supplied.
    PatternVertex& v = pattern_.VertexById(it->second);
    v.tc = v.tc.Intersect(tc);
    return it->second;
  }
  int id = pattern_.AddVertex(key, tc);
  alias_to_vid_[key] = id;
  return id;
}

PatternBuilder& PatternBuilder::GetV(const std::string& alias,
                                     TypeConstraint tc) {
  VertexFor(alias, tc);
  return *this;
}

PatternBuilder& PatternBuilder::ExpandE(const std::string& from_tag,
                                        const std::string& alias,
                                        TypeConstraint tc, Direction dir) {
  auto it = alias_to_vid_.find(from_tag);
  if (it == alias_to_vid_.end()) {
    throw std::runtime_error("ExpandE: unknown tag '" + from_tag + "'");
  }
  std::string key = alias.empty() ? "$e" + std::to_string(anon_counter_++) : alias;
  pending_ = PendingEdge{it->second, key, std::move(tc), dir, 1, 1,
                         PathSemantics::kArbitrary};
  return *this;
}

PatternBuilder& PatternBuilder::ExpandPath(const std::string& from_tag,
                                           const std::string& alias,
                                           TypeConstraint tc, Direction dir,
                                           int min_hops, int max_hops,
                                           PathSemantics semantics) {
  auto it = alias_to_vid_.find(from_tag);
  if (it == alias_to_vid_.end()) {
    throw std::runtime_error("ExpandPath: unknown tag '" + from_tag + "'");
  }
  std::string key = alias.empty() ? "$e" + std::to_string(anon_counter_++) : alias;
  pending_ = PendingEdge{it->second, key,    std::move(tc), dir,
                         min_hops,   max_hops, semantics};
  return *this;
}

PatternBuilder& PatternBuilder::GetV(const std::string& edge_tag,
                                     const std::string& alias,
                                     TypeConstraint tc, VertexEnd end) {
  if (!pending_ || pending_->alias != edge_tag) {
    throw std::runtime_error("GetV: no pending edge '" + edge_tag + "'");
  }
  int other = VertexFor(alias, tc);
  PendingEdge pe = *pending_;
  pending_.reset();

  // Normalize direction so stored pattern edges are kOut or kBoth: a kIn
  // expansion from u to v is the same as a kOut edge v->u.
  int src = pe.from_vid, dst = other;
  Direction dir = pe.dir;
  if (end == VertexEnd::kStart) std::swap(src, dst);
  if (dir == Direction::kIn) {
    std::swap(src, dst);
    dir = Direction::kOut;
  }
  int eid = pattern_.AddEdge(src, dst, pe.alias, pe.tc, dir);
  PatternEdge& e = pattern_.EdgeById(eid);
  e.min_hops = pe.min_hops;
  e.max_hops = pe.max_hops;
  e.semantics = pe.semantics;
  return *this;
}

PatternBuilder& PatternBuilder::WhereVertex(const std::string& alias,
                                            ExprPtr pred) {
  auto it = alias_to_vid_.find(alias);
  if (it == alias_to_vid_.end()) {
    throw std::runtime_error("WhereVertex: unknown alias '" + alias + "'");
  }
  pattern_.VertexById(it->second).predicates.push_back(std::move(pred));
  return *this;
}

PatternBuilder& PatternBuilder::WhereEdge(const std::string& alias,
                                          ExprPtr pred) {
  for (auto& e : pattern_.mutable_edges()) {
    if (e.alias == alias) {
      e.predicates.push_back(std::move(pred));
      return *this;
    }
  }
  throw std::runtime_error("WhereEdge: unknown alias '" + alias + "'");
}

namespace {

/// Splits a (possibly disconnected) pattern into connected components.
std::vector<Pattern> ConnectedComponents(const Pattern& p) {
  std::vector<Pattern> out;
  std::set<int> seen;
  for (const auto& v : p.vertices()) {
    if (seen.count(v.id)) continue;
    // BFS over vertex ids.
    std::set<int> comp;
    std::vector<int> stack = {v.id};
    while (!stack.empty()) {
      int x = stack.back();
      stack.pop_back();
      if (!comp.insert(x).second) continue;
      for (int n : p.NeighborVertices(x)) stack.push_back(n);
    }
    std::vector<int> edge_ids;
    for (const auto& e : p.edges()) {
      if (comp.count(e.src)) edge_ids.push_back(e.id);
    }
    Pattern sub = edge_ids.empty() ? p.SingleVertex(v.id)
                                   : p.SubpatternByEdges(edge_ids);
    // SubpatternByEdges drops isolated vertices; add them individually.
    if (!edge_ids.empty()) {
      for (int x : comp) {
        if (!sub.HasVertex(x)) {
          out.push_back(p.SingleVertex(x));
          seen.insert(x);
        }
      }
    }
    for (int x : comp) seen.insert(x);
    out.push_back(std::move(sub));
  }
  return out;
}

}  // namespace

LogicalOpPtr PatternBuilder::PatternEnd() {
  if (pending_) throw std::runtime_error("PatternEnd with dangling ExpandE");
  GraphIrBuilder b;
  return b.MatchComponents(std::move(pattern_));
}

LogicalOpPtr GraphIrBuilder::MatchComponents(Pattern p) {
  if (p.IsConnected()) return Match(std::move(p));
  // Cartesian product of the matches of each connected component.
  auto comps = ConnectedComponents(p);
  LogicalOpPtr acc;
  for (auto& c : comps) {
    LogicalOpPtr m = Match(std::move(c));
    acc = acc ? Join(acc, m, {}, JoinKind::kInner) : m;
  }
  return acc;
}

LogicalOpPtr GraphIrBuilder::Match(Pattern p) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kMatchPattern);
  op->pattern = std::move(p);
  return op;
}

LogicalOpPtr GraphIrBuilder::Join(LogicalOpPtr left, LogicalOpPtr right,
                                  std::vector<std::string> keys, JoinKind kind) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kJoin);
  op->inputs = {std::move(left), std::move(right)};
  op->join_keys = std::move(keys);
  op->join_kind = kind;
  return op;
}

LogicalOpPtr GraphIrBuilder::Select(LogicalOpPtr in, ExprPtr predicate) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kSelect);
  op->inputs = {std::move(in)};
  op->predicate = std::move(predicate);
  return op;
}

LogicalOpPtr GraphIrBuilder::Project(LogicalOpPtr in,
                                     std::vector<ProjectItem> items,
                                     bool append) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kProject);
  op->inputs = {std::move(in)};
  op->items = std::move(items);
  op->append = append;
  return op;
}

LogicalOpPtr GraphIrBuilder::Group(LogicalOpPtr in,
                                   std::vector<ProjectItem> keys,
                                   std::vector<AggCall> aggs) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kAggregate);
  op->inputs = {std::move(in)};
  op->group_keys = std::move(keys);
  op->aggs = std::move(aggs);
  return op;
}

LogicalOpPtr GraphIrBuilder::Order(LogicalOpPtr in, std::vector<SortItem> keys,
                                   int64_t limit) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kOrder);
  op->inputs = {std::move(in)};
  op->sort_items = std::move(keys);
  op->limit = limit;
  return op;
}

LogicalOpPtr GraphIrBuilder::Limit(LogicalOpPtr in, int64_t n) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kLimit);
  op->inputs = {std::move(in)};
  op->limit = n;
  return op;
}

LogicalOpPtr GraphIrBuilder::Dedup(LogicalOpPtr in,
                                   std::vector<std::string> tags) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kDedup);
  op->inputs = {std::move(in)};
  op->dedup_tags = std::move(tags);
  return op;
}

LogicalOpPtr GraphIrBuilder::Union(LogicalOpPtr left, LogicalOpPtr right,
                                   bool distinct) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kUnion);
  op->inputs = {std::move(left), std::move(right)};
  op->union_distinct = distinct;
  return op;
}

LogicalOpPtr GraphIrBuilder::Unfold(LogicalOpPtr in, std::string tag,
                                    std::string alias) {
  auto op = std::make_shared<LogicalOp>(LogicalOpKind::kUnfold);
  op->inputs = {std::move(in)};
  op->unfold_tag = std::move(tag);
  op->unfold_alias = std::move(alias);
  return op;
}

}  // namespace gopt
