#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/gir/expr.h"
#include "src/gir/pattern.h"

namespace gopt {

/// GIR logical operator kinds (paper Section 5.1). Graph operators
/// (EXPAND_EDGE / GET_VERTEX / EXPAND_PATH) live inside MATCH_PATTERN as the
/// composite `Pattern`; the DAG-level operators below combine patterns with
/// relational operations.
enum class LogicalOpKind {
  kMatchPattern,   ///< Leaf: match a Pattern against the data graph.
  kPatternExtend,  ///< Extend bound prefix rows by a delta pattern
                   ///< (produced by the ComSubPattern rule).
  kSelect,         ///< Filter rows by a predicate.
  kProject,        ///< Compute expressions; optionally append to the row.
  kAggregate,      ///< GROUP keys + aggregate calls.
  kOrder,          ///< Sort; optional fused limit (top-k).
  kLimit,          ///< Truncate.
  kDedup,          ///< Distinct on a tag list (empty = whole row).
  kJoin,           ///< Binary join on tag keys.
  kUnion,          ///< Binary union (all or distinct).
  kUnfold,         ///< Explode a list value into rows.
};

enum class JoinKind { kInner, kLeftOuter, kSemi, kAnti };

/// One PROJECT output: expr AS alias.
struct ProjectItem {
  ExprPtr expr;
  std::string alias;
};

/// One ORDER key.
struct SortItem {
  ExprPtr expr;
  bool asc = true;
};

struct LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// A node of the GIR logical plan DAG. A single struct with per-kind payload
/// fields keeps plan rewriting (RBO) simple; unused fields stay default.
struct LogicalOp {
  LogicalOpKind kind;
  std::vector<LogicalOpPtr> inputs;

  // kMatchPattern / kPatternExtend
  Pattern pattern;
  std::vector<int> bound_vertices;  ///< kPatternExtend: already-bound ids.
  std::vector<int> bound_edges;     ///< kPatternExtend: already-matched edges.
  /// FieldTrim: aliases that must survive this pattern (meaningful only
  /// when `trimmed` is set; may legitimately be empty, e.g. under COUNT(*)).
  std::vector<std::string> output_tags;
  bool trimmed = false;
  /// FieldTrim: properties to materialize per tag ("COLUMNS" in the paper).
  std::vector<std::pair<std::string, std::string>> columns;

  // kSelect
  ExprPtr predicate;

  // kProject
  std::vector<ProjectItem> items;
  bool append = false;

  // kAggregate
  std::vector<ProjectItem> group_keys;
  std::vector<AggCall> aggs;

  // kOrder / kLimit
  std::vector<SortItem> sort_items;
  int64_t limit = -1;

  // kDedup
  std::vector<std::string> dedup_tags;

  // kJoin
  std::vector<std::string> join_keys;
  JoinKind join_kind = JoinKind::kInner;

  // kUnion
  bool union_distinct = false;

  // kUnfold
  std::string unfold_tag;
  std::string unfold_alias;

  explicit LogicalOp(LogicalOpKind k) : kind(k) {}

  /// Deep copy of this op and its subtree (patterns/exprs shared where
  /// immutable).
  LogicalOpPtr Clone() const;

  /// Aliases visible in rows produced by this operator.
  std::vector<std::string> OutputAliases() const;

  /// Pretty-prints the plan subtree, one operator per line.
  std::string ToString(const GraphSchema& schema, int indent = 0) const;
};

const char* LogicalOpKindName(LogicalOpKind k);

}  // namespace gopt
