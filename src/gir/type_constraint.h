#pragma once

#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/graph/schema.h"

namespace gopt {

/// A type constraint on a pattern vertex or edge (paper Section 3):
///  - BasicType: exactly one concrete type;
///  - UnionType: any of a set of types;
///  - AllType:   unconstrained (matches every type in the data graph).
///
/// Internally AllType is a flag so it stays schema-independent until
/// resolution; Resolve() expands it to the full type list of a schema.
class TypeConstraint {
 public:
  /// Default-constructed constraint is AllType.
  TypeConstraint() : all_(true) {}

  static TypeConstraint All() { return TypeConstraint(); }
  static TypeConstraint Basic(TypeId t) {
    TypeConstraint c;
    c.all_ = false;
    c.types_ = {t};
    return c;
  }
  static TypeConstraint Union(std::vector<TypeId> ts);
  /// An empty (unsatisfiable) constraint; produced by failed intersection.
  static TypeConstraint None() {
    TypeConstraint c;
    c.all_ = false;
    return c;
  }

  bool IsAll() const { return all_; }
  bool IsBasic() const { return !all_ && types_.size() == 1; }
  bool IsUnion() const { return !all_ && types_.size() > 1; }
  bool IsNone() const { return !all_ && types_.empty(); }

  /// The explicit type list (meaningless when IsAll()).
  const std::vector<TypeId>& types() const { return types_; }
  TypeId single() const { return types_[0]; }

  bool Matches(TypeId t) const;

  /// Concrete candidate types: the explicit list, or every type in
  /// `universe` when AllType.
  std::vector<TypeId> Resolve(const std::vector<TypeId>& universe) const;

  /// Number of candidate types given a universe size (used to order the
  /// type-inference worklist by |tau(u)|).
  size_t Cardinality(size_t universe_size) const {
    return all_ ? universe_size : types_.size();
  }

  /// Set intersection; All is the identity.
  TypeConstraint Intersect(const TypeConstraint& other) const;

  bool operator==(const TypeConstraint& other) const;

  /// Rendering such as "Person", "Person|Product" or "AllType".
  std::string ToString(const GraphSchema& schema, bool is_vertex) const;

 private:
  bool all_;
  std::vector<TypeId> types_;  // sorted, unique
};

}  // namespace gopt
