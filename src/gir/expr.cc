#include "src/gir/expr.h"

namespace gopt {

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeVar(std::string tag) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kVar;
  e->tag = std::move(tag);
  return e;
}

ExprPtr Expr::MakeProperty(std::string tag, std::string prop) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kProperty;
  e->tag = std::move(tag);
  e->prop = std::move(prop);
  return e;
}

ExprPtr Expr::MakeParam(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kParam;
  e->tag = std::move(name);
  return e;
}

ExprPtr Expr::MakeBinary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->bin = op;
  e->args = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::MakeUnary(UnOp op, ExprPtr x) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->un = op;
  e->args = {std::move(x)};
  return e;
}

ExprPtr Expr::MakeFunc(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kFunc;
  e->func = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr Expr::And(const std::vector<ExprPtr>& preds) {
  ExprPtr acc;
  for (const ExprPtr& p : preds) {
    if (!p) continue;
    acc = acc ? MakeBinary(BinOp::kAnd, acc, p) : p;
  }
  return acc;
}

void Expr::CollectTags(std::set<std::string>* tags) const {
  if (kind == Kind::kVar || kind == Kind::kProperty) tags->insert(tag);
  for (const auto& a : args) a->CollectTags(tags);
}

void Expr::CollectParams(std::set<std::string>* names) const {
  if (kind == Kind::kParam) names->insert(tag);
  for (const auto& a : args) a->CollectParams(names);
}

void Expr::CollectProperties(
    std::set<std::pair<std::string, std::string>>* tag_props) const {
  if (kind == Kind::kProperty) tag_props->insert({tag, prop});
  for (const auto& a : args) a->CollectProperties(tag_props);
}

bool Expr::OnlyUses(const std::set<std::string>& available) const {
  std::set<std::string> tags;
  CollectTags(&tags);
  for (const auto& t : tags) {
    if (!available.count(t)) return false;
  }
  return true;
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kIn: return "IN";
    case BinOp::kContains: return "CONTAINS";
    case BinOp::kStartsWith: return "STARTS WITH";
  }
  return "?";
}

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kCountDistinct: return "COUNT_DISTINCT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kCollect: return "COLLECT";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.kind() == Value::Kind::kString ? "'" + literal.ToString() + "'"
                                                    : literal.ToString();
    case Kind::kVar:
      return tag;
    case Kind::kProperty:
      return tag + "." + prop;
    case Kind::kParam:
      return "$" + tag;
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + BinOpName(bin) + " " +
             args[1]->ToString() + ")";
    case Kind::kUnary:
      switch (un) {
        case UnOp::kNot: return "NOT " + args[0]->ToString();
        case UnOp::kNeg: return "-" + args[0]->ToString();
        case UnOp::kIsNull: return args[0]->ToString() + " IS NULL";
        case UnOp::kIsNotNull: return args[0]->ToString() + " IS NOT NULL";
      }
      return "?";
    case Kind::kFunc: {
      std::string s = func + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

}  // namespace gopt
