#include "src/gir/logical_op.h"

#include <set>

namespace gopt {

const char* LogicalOpKindName(LogicalOpKind k) {
  switch (k) {
    case LogicalOpKind::kMatchPattern: return "MATCH_PATTERN";
    case LogicalOpKind::kPatternExtend: return "PATTERN_EXTEND";
    case LogicalOpKind::kSelect: return "SELECT";
    case LogicalOpKind::kProject: return "PROJECT";
    case LogicalOpKind::kAggregate: return "GROUP";
    case LogicalOpKind::kOrder: return "ORDER";
    case LogicalOpKind::kLimit: return "LIMIT";
    case LogicalOpKind::kDedup: return "DEDUP";
    case LogicalOpKind::kJoin: return "JOIN";
    case LogicalOpKind::kUnion: return "UNION";
    case LogicalOpKind::kUnfold: return "UNFOLD";
  }
  return "?";
}

LogicalOpPtr LogicalOp::Clone() const {
  auto copy = std::make_shared<LogicalOp>(*this);
  for (auto& in : copy->inputs) in = in->Clone();
  return copy;
}

std::vector<std::string> LogicalOp::OutputAliases() const {
  std::set<std::string> out;
  switch (kind) {
    case LogicalOpKind::kMatchPattern: {
      for (const auto& a : pattern.Aliases()) out.insert(a);
      break;
    }
    case LogicalOpKind::kPatternExtend: {
      if (!inputs.empty()) {
        for (const auto& a : inputs[0]->OutputAliases()) out.insert(a);
      }
      for (const auto& a : pattern.Aliases()) out.insert(a);
      break;
    }
    case LogicalOpKind::kProject: {
      if (append && !inputs.empty()) {
        for (const auto& a : inputs[0]->OutputAliases()) out.insert(a);
      }
      for (const auto& it : items) out.insert(it.alias);
      break;
    }
    case LogicalOpKind::kAggregate: {
      for (const auto& k : group_keys) out.insert(k.alias);
      for (const auto& a : aggs) out.insert(a.alias);
      break;
    }
    case LogicalOpKind::kJoin: {
      for (const auto& in : inputs) {
        for (const auto& a : in->OutputAliases()) out.insert(a);
      }
      break;
    }
    case LogicalOpKind::kUnfold: {
      if (!inputs.empty()) {
        for (const auto& a : inputs[0]->OutputAliases()) out.insert(a);
      }
      out.insert(unfold_alias);
      break;
    }
    default: {
      if (!inputs.empty()) {
        for (const auto& a : inputs[0]->OutputAliases()) out.insert(a);
      }
      break;
    }
  }
  return {out.begin(), out.end()};
}

std::string LogicalOp::ToString(const GraphSchema& schema, int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + LogicalOpKindName(kind);
  switch (kind) {
    case LogicalOpKind::kMatchPattern:
    case LogicalOpKind::kPatternExtend:
      s += " " + pattern.ToString(schema);
      if (!columns.empty()) {
        s += " COLUMNS={";
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i) s += ",";
          s += columns[i].first + "." + columns[i].second;
        }
        s += "}";
      }
      break;
    case LogicalOpKind::kSelect:
      s += " " + (predicate ? predicate->ToString() : "true");
      break;
    case LogicalOpKind::kProject:
      s += append ? " append{" : " {";
      for (size_t i = 0; i < items.size(); ++i) {
        if (i) s += ", ";
        s += items[i].expr->ToString() + " AS " + items[i].alias;
      }
      s += "}";
      break;
    case LogicalOpKind::kAggregate: {
      s += " keys={";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i) s += ", ";
        s += group_keys[i].expr->ToString() + " AS " + group_keys[i].alias;
      }
      s += "} aggs={";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i) s += ", ";
        s += std::string(AggFuncName(aggs[i].fn)) + "(" +
             (aggs[i].arg ? aggs[i].arg->ToString() : "*") + ") AS " +
             aggs[i].alias;
      }
      s += "}";
      break;
    }
    case LogicalOpKind::kOrder: {
      s += " keys={";
      for (size_t i = 0; i < sort_items.size(); ++i) {
        if (i) s += ", ";
        s += sort_items[i].expr->ToString() +
             (sort_items[i].asc ? " ASC" : " DESC");
      }
      s += "}";
      if (limit >= 0) s += " limit=" + std::to_string(limit);
      break;
    }
    case LogicalOpKind::kLimit:
      s += " " + std::to_string(limit);
      break;
    case LogicalOpKind::kDedup: {
      s += " {";
      for (size_t i = 0; i < dedup_tags.size(); ++i) {
        if (i) s += ", ";
        s += dedup_tags[i];
      }
      s += "}";
      break;
    }
    case LogicalOpKind::kJoin: {
      s += " keys={";
      for (size_t i = 0; i < join_keys.size(); ++i) {
        if (i) s += ", ";
        s += join_keys[i];
      }
      s += "}";
      break;
    }
    case LogicalOpKind::kUnion:
      if (union_distinct) s += " DISTINCT";
      break;
    case LogicalOpKind::kUnfold:
      s += " " + unfold_tag + " AS " + unfold_alias;
      break;
  }
  s += "\n";
  for (const auto& in : inputs) s += in->ToString(schema, indent + 1);
  return s;
}

}  // namespace gopt
