#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace gopt {

/// Runtime bindings of named query parameters ($name -> value), supplied at
/// Execute time and resolved by ExprEval without replanning.
using ParamMap = std::map<std::string, Value>;

enum class BinOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kIn,          // value IN list-literal
  kContains,    // string contains
  kStartsWith,  // string prefix
};

enum class UnOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression tree used by SELECT predicates, PROJECT items, ORDER
/// keys and pattern-level predicates. Immutable once built (shared freely
/// between plan alternatives).
///
/// kParam is an unresolved named-parameter slot ($name): the plan keeps the
/// slot through optimization and physical lowering, and ExprEval resolves
/// it against the ParamMap supplied at execution time — the mechanism that
/// lets one cached plan serve any literal binding.
struct Expr {
  enum class Kind { kLiteral, kVar, kProperty, kParam, kBinary, kUnary, kFunc };

  Kind kind = Kind::kLiteral;
  Value literal;        // kLiteral
  std::string tag;      // kVar, kProperty: the alias referenced; kParam: name
  std::string prop;     // kProperty: property name
  BinOp bin = BinOp::kEq;
  UnOp un = UnOp::kNot;
  std::string func;  // kFunc: "id", "label", "length", "size", ...
  std::vector<ExprPtr> args;

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeVar(std::string tag);
  static ExprPtr MakeProperty(std::string tag, std::string prop);
  /// Unresolved parameter slot $name (bound at execution time).
  static ExprPtr MakeParam(std::string name);
  static ExprPtr MakeBinary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr MakeUnary(UnOp op, ExprPtr x);
  static ExprPtr MakeFunc(std::string name, std::vector<ExprPtr> args);

  /// Conjunction of a list of predicates (nullptr if empty).
  static ExprPtr And(const std::vector<ExprPtr>& preds);

  /// Collects every alias (tag) the expression references.
  void CollectTags(std::set<std::string>* tags) const;

  /// Collects every parameter name ($name slots) the expression references.
  void CollectParams(std::set<std::string>* names) const;

  /// Collects referenced properties per tag, for FieldTrim COLUMNS pruning.
  void CollectProperties(
      std::set<std::pair<std::string, std::string>>* tag_props) const;

  /// True if all referenced tags are within `available`.
  bool OnlyUses(const std::set<std::string>& available) const;

  std::string ToString() const;
};

/// Aggregate functions supported by GROUP (paper's AggFunc).
enum class AggFunc {
  kCount,
  kCountDistinct,
  kSum,
  kMin,
  kMax,
  kAvg,
  kCollect,
};

/// One aggregate call: fn(arg) AS alias. A null arg means COUNT(*).
struct AggCall {
  AggFunc fn = AggFunc::kCount;
  ExprPtr arg;
  std::string alias;
};

const char* BinOpName(BinOp op);
const char* AggFuncName(AggFunc fn);

}  // namespace gopt
