#include "src/gir/pattern.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace gopt {

int Pattern::AddVertex(std::string alias, TypeConstraint tc, int id) {
  if (id < 0) id = next_vertex_id_;
  next_vertex_id_ = std::max(next_vertex_id_, id + 1);
  PatternVertex v;
  v.id = id;
  v.alias = std::move(alias);
  v.tc = std::move(tc);
  vertices_.push_back(std::move(v));
  return id;
}

int Pattern::AddEdge(int src, int dst, std::string alias, TypeConstraint tc,
                     Direction dir, int id) {
  if (id < 0) id = next_edge_id_;
  next_edge_id_ = std::max(next_edge_id_, id + 1);
  PatternEdge e;
  e.id = id;
  e.src = src;
  e.dst = dst;
  e.alias = std::move(alias);
  e.tc = std::move(tc);
  e.dir = dir;
  edges_.push_back(std::move(e));
  return id;
}

const PatternVertex& Pattern::VertexById(int id) const {
  for (const auto& v : vertices_) {
    if (v.id == id) return v;
  }
  throw std::runtime_error("Pattern: no vertex with id " + std::to_string(id));
}

PatternVertex& Pattern::VertexById(int id) {
  for (auto& v : vertices_) {
    if (v.id == id) return v;
  }
  throw std::runtime_error("Pattern: no vertex with id " + std::to_string(id));
}

const PatternEdge& Pattern::EdgeById(int id) const {
  for (const auto& e : edges_) {
    if (e.id == id) return e;
  }
  throw std::runtime_error("Pattern: no edge with id " + std::to_string(id));
}

PatternEdge& Pattern::EdgeById(int id) {
  for (auto& e : edges_) {
    if (e.id == id) return e;
  }
  throw std::runtime_error("Pattern: no edge with id " + std::to_string(id));
}

bool Pattern::HasVertex(int id) const {
  for (const auto& v : vertices_) {
    if (v.id == id) return true;
  }
  return false;
}

const PatternVertex* Pattern::FindVertexByAlias(const std::string& alias) const {
  if (alias.empty()) return nullptr;
  for (const auto& v : vertices_) {
    if (v.alias == alias) return &v;
  }
  return nullptr;
}

const PatternEdge* Pattern::FindEdgeByAlias(const std::string& alias) const {
  if (alias.empty()) return nullptr;
  for (const auto& e : edges_) {
    if (e.alias == alias) return &e;
  }
  return nullptr;
}

std::vector<int> Pattern::IncidentEdges(int v) const {
  std::vector<int> r;
  for (const auto& e : edges_) {
    if (e.src == v || e.dst == v) r.push_back(e.id);
  }
  return r;
}

std::vector<int> Pattern::NeighborVertices(int v) const {
  std::set<int> r;
  for (const auto& e : edges_) {
    if (e.src == v) r.insert(e.dst);
    if (e.dst == v) r.insert(e.src);
  }
  r.erase(v);
  return {r.begin(), r.end()};
}

bool Pattern::IsConnected() const {
  if (vertices_.empty()) return true;
  std::set<int> visited;
  std::vector<int> stack = {vertices_[0].id};
  while (!stack.empty()) {
    int v = stack.back();
    stack.pop_back();
    if (!visited.insert(v).second) continue;
    for (const auto& e : edges_) {
      if (e.src == v) stack.push_back(e.dst);
      if (e.dst == v) stack.push_back(e.src);
    }
  }
  return visited.size() == vertices_.size();
}

bool Pattern::IsConnectedWithout(int v) const {
  if (vertices_.size() <= 1) return false;  // removing the only vertex
  return WithoutVertex(v).IsConnected();
}

Pattern Pattern::SubpatternByEdges(const std::vector<int>& edge_ids) const {
  Pattern p;
  std::set<int> want(edge_ids.begin(), edge_ids.end());
  std::set<int> vids;
  for (const auto& e : edges_) {
    if (want.count(e.id)) {
      vids.insert(e.src);
      vids.insert(e.dst);
    }
  }
  for (const auto& v : vertices_) {
    if (vids.count(v.id)) p.vertices_.push_back(v);
  }
  for (const auto& e : edges_) {
    if (want.count(e.id)) p.edges_.push_back(e);
  }
  p.next_vertex_id_ = next_vertex_id_;
  p.next_edge_id_ = next_edge_id_;
  return p;
}

Pattern Pattern::WithoutVertex(int v) const {
  Pattern p;
  for (const auto& pv : vertices_) {
    if (pv.id != v) p.vertices_.push_back(pv);
  }
  for (const auto& e : edges_) {
    if (e.src != v && e.dst != v) p.edges_.push_back(e);
  }
  p.next_vertex_id_ = next_vertex_id_;
  p.next_edge_id_ = next_edge_id_;
  return p;
}

Pattern Pattern::SingleVertex(int v) const {
  Pattern p;
  p.vertices_.push_back(VertexById(v));
  p.next_vertex_id_ = next_vertex_id_;
  p.next_edge_id_ = next_edge_id_;
  return p;
}

std::vector<int> Pattern::CommonVertices(const Pattern& other) const {
  std::vector<int> r;
  for (const auto& v : vertices_) {
    if (other.HasVertex(v.id)) r.push_back(v.id);
  }
  return r;
}

std::vector<std::string> Pattern::Aliases() const {
  std::vector<std::string> r;
  for (const auto& v : vertices_) {
    if (!v.alias.empty()) r.push_back(v.alias);
  }
  for (const auto& e : edges_) {
    if (!e.alias.empty()) r.push_back(e.alias);
  }
  return r;
}

bool Pattern::AllBasicTypes() const {
  for (const auto& v : vertices_) {
    if (!v.tc.IsBasic()) return false;
  }
  for (const auto& e : edges_) {
    if (!e.tc.IsBasic()) return false;
  }
  return true;
}

bool Pattern::HasPathEdge() const {
  return std::any_of(edges_.begin(), edges_.end(),
                     [](const PatternEdge& e) { return e.IsPath(); });
}

std::string Pattern::ToString(const GraphSchema& schema) const {
  std::string s = "Pattern{";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const auto& v = vertices_[i];
    if (i) s += ", ";
    s += "(" + std::to_string(v.id);
    if (!v.alias.empty()) s += ":" + v.alias;
    s += " " + v.tc.ToString(schema, true) + ")";
  }
  s += "; ";
  for (size_t i = 0; i < edges_.size(); ++i) {
    const auto& e = edges_[i];
    if (i) s += ", ";
    s += std::to_string(e.src);
    s += (e.dir == Direction::kIn) ? "<-" : "-";
    s += "[" + e.tc.ToString(schema, false);
    if (e.IsPath()) {
      s += "*" + std::to_string(e.min_hops) + ".." + std::to_string(e.max_hops);
    }
    s += "]";
    s += (e.dir == Direction::kOut) ? "->" : "-";
    s += std::to_string(e.dst);
  }
  return s + "}";
}

}  // namespace gopt
