#include "src/ldbc/ldbc.h"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace gopt {

namespace {

const char* kFirstNames[] = {"Jan",   "Emma",  "Liam", "Olga",  "Wei",
                             "Aisha", "Carlos", "Yuki", "Ravi",  "Sofia",
                             "Ahmed", "Nina",  "Jack", "Marta", "Chen",
                             "Lucas", "Ines",  "Omar", "Keiko", "Paul"};
const char* kLastNames[] = {"Smith", "Garcia", "Mueller", "Tanaka", "Kumar",
                            "Ivanov", "Chen",  "Silva",   "Khan",   "Rossi",
                            "Novak", "Kim",   "Lopez",   "Sato",    "Braun"};
const char* kBrowsers[] = {"Chrome", "Firefox", "Safari", "Edge", "Opera"};
const char* kLanguages[] = {"en", "zh", "es", "de", "ja", "pt"};

}  // namespace

GraphSchema MakeLdbcSchema() {
  GraphSchema s;
  using K = Value::Kind;
  TypeId person = s.AddVertexType(
      "Person", {{"id", K::kInt},
                 {"firstName", K::kString},
                 {"lastName", K::kString},
                 {"birthday", K::kInt},
                 {"creationDate", K::kInt},
                 {"browserUsed", K::kString},
                 {"gender", K::kString}});
  TypeId forum = s.AddVertexType(
      "Forum", {{"id", K::kInt}, {"title", K::kString}, {"creationDate", K::kInt}});
  TypeId post = s.AddVertexType(
      "Post", {{"id", K::kInt},
               {"creationDate", K::kInt},
               {"content", K::kString},
               {"length", K::kInt},
               {"browserUsed", K::kString},
               {"language", K::kString}});
  TypeId comment = s.AddVertexType(
      "Comment", {{"id", K::kInt},
                  {"creationDate", K::kInt},
                  {"content", K::kString},
                  {"length", K::kInt},
                  {"browserUsed", K::kString}});
  TypeId place = s.AddVertexType(
      "Place", {{"id", K::kInt}, {"name", K::kString}, {"type", K::kString}});
  TypeId tag = s.AddVertexType("Tag",
                               {{"id", K::kInt}, {"name", K::kString}});
  TypeId tagclass = s.AddVertexType(
      "TagClass", {{"id", K::kInt}, {"name", K::kString}});
  TypeId organisation = s.AddVertexType(
      "Organisation",
      {{"id", K::kInt}, {"name", K::kString}, {"type", K::kString}});

  s.AddEdgeType("KNOWS", {{person, person}}, {{"creationDate", K::kInt}});
  s.AddEdgeType("HAS_MEMBER", {{forum, person}}, {{"joinDate", K::kInt}});
  s.AddEdgeType("HAS_MODERATOR", {{forum, person}});
  s.AddEdgeType("CONTAINER_OF", {{forum, post}});
  s.AddEdgeType("HAS_CREATOR", {{post, person}, {comment, person}});
  s.AddEdgeType("LIKES", {{person, post}, {person, comment}},
                {{"creationDate", K::kInt}});
  s.AddEdgeType("IS_LOCATED_IN",
                {{person, place}, {post, place}, {comment, place},
                 {organisation, place}});
  s.AddEdgeType("REPLY_OF", {{comment, post}, {comment, comment}});
  s.AddEdgeType("HAS_TAG", {{post, tag}, {comment, tag}, {forum, tag}});
  s.AddEdgeType("HAS_INTEREST", {{person, tag}});
  s.AddEdgeType("HAS_TYPE", {{tag, tagclass}});
  s.AddEdgeType("IS_SUBCLASS_OF", {{tagclass, tagclass}});
  s.AddEdgeType("IS_PART_OF", {{place, place}});
  s.AddEdgeType("STUDY_AT", {{person, organisation}},
                {{"classYear", K::kInt}});
  s.AddEdgeType("WORK_AT", {{person, organisation}},
                {{"workFrom", K::kInt}});
  return s;
}

LdbcGraph GenerateLdbc(double sf, uint64_t seed) {
  GraphSchema schema = MakeLdbcSchema();
  auto person = *schema.FindVertexType("Person");
  auto forum = *schema.FindVertexType("Forum");
  auto post = *schema.FindVertexType("Post");
  auto comment = *schema.FindVertexType("Comment");
  auto place = *schema.FindVertexType("Place");
  auto tag = *schema.FindVertexType("Tag");
  auto tagclass = *schema.FindVertexType("TagClass");
  auto organisation = *schema.FindVertexType("Organisation");
  auto knows = *schema.FindEdgeType("KNOWS");
  auto has_member = *schema.FindEdgeType("HAS_MEMBER");
  auto has_moderator = *schema.FindEdgeType("HAS_MODERATOR");
  auto container_of = *schema.FindEdgeType("CONTAINER_OF");
  auto has_creator = *schema.FindEdgeType("HAS_CREATOR");
  auto likes = *schema.FindEdgeType("LIKES");
  auto located_in = *schema.FindEdgeType("IS_LOCATED_IN");
  auto reply_of = *schema.FindEdgeType("REPLY_OF");
  auto has_tag = *schema.FindEdgeType("HAS_TAG");
  auto has_interest = *schema.FindEdgeType("HAS_INTEREST");
  auto has_type = *schema.FindEdgeType("HAS_TYPE");
  auto subclass_of = *schema.FindEdgeType("IS_SUBCLASS_OF");
  auto part_of = *schema.FindEdgeType("IS_PART_OF");
  auto study_at = *schema.FindEdgeType("STUDY_AT");
  auto work_at = *schema.FindEdgeType("WORK_AT");

  auto g = std::make_shared<PropertyGraph>(schema);
  Rng rng(seed);

  const size_t n_person = static_cast<size_t>(900 * sf) + 10;
  const size_t n_forum = static_cast<size_t>(280 * sf) + 5;
  const size_t n_post = static_cast<size_t>(2400 * sf) + 20;
  const size_t n_comment = static_cast<size_t>(4800 * sf) + 20;
  const size_t n_place = 60;      // fixed dimension tables
  const size_t n_tag = 120;
  const size_t n_tagclass = 15;
  const size_t n_org = 60;

  std::vector<VertexId> persons, forums, posts, comments, places, tags,
      tagclasses, orgs;

  // ---- dimension vertices ----
  for (size_t i = 0; i < n_place; ++i) {
    VertexId v = g->AddVertex(place);
    places.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "name", Value("place_" + std::to_string(i)));
    const char* kind = i < 45 ? "city" : (i < 57 ? "country" : "continent");
    g->SetVertexProp(v, "type", Value(kind));
  }
  // Hierarchy: city -> country -> continent.
  for (size_t i = 0; i < 45; ++i) {
    g->AddEdge(places[i], places[45 + i % 12], part_of);
  }
  for (size_t i = 45; i < 57; ++i) {
    g->AddEdge(places[i], places[57 + i % 3], part_of);
  }
  for (size_t i = 0; i < n_tagclass; ++i) {
    VertexId v = g->AddVertex(tagclass);
    tagclasses.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "name", Value("tagclass_" + std::to_string(i)));
    if (i > 0) g->AddEdge(v, tagclasses[(i - 1) / 2], subclass_of);
  }
  for (size_t i = 0; i < n_tag; ++i) {
    VertexId v = g->AddVertex(tag);
    tags.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "name", Value("tag_" + std::to_string(i)));
    g->AddEdge(v, tagclasses[rng.NextZipf(n_tagclass, 0.8)], has_type);
  }
  for (size_t i = 0; i < n_org; ++i) {
    VertexId v = g->AddVertex(organisation);
    orgs.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "name", Value("org_" + std::to_string(i)));
    g->SetVertexProp(v, "type", Value(i % 3 == 0 ? "university" : "company"));
    g->AddEdge(v, places[rng.NextZipf(n_place, 0.7)], located_in);
  }

  // ---- persons ----
  for (size_t i = 0; i < n_person; ++i) {
    VertexId v = g->AddVertex(person);
    persons.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "firstName", Value(kFirstNames[rng.NextInt(20)]));
    g->SetVertexProp(v, "lastName", Value(kLastNames[rng.NextInt(15)]));
    g->SetVertexProp(v, "birthday",
                     Value(static_cast<int64_t>(rng.NextRange(19500101, 20051231))));
    g->SetVertexProp(v, "creationDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    g->SetVertexProp(v, "browserUsed", Value(kBrowsers[rng.NextInt(5)]));
    g->SetVertexProp(v, "gender", Value(rng.NextBool(0.5) ? "male" : "female"));
    g->AddEdge(v, places[rng.NextZipf(45, 0.9)], located_in);
    if (rng.NextBool(0.5)) {
      EdgeId e = g->AddEdge(v, orgs[rng.NextZipf(n_org, 0.8)], study_at);
      g->SetEdgeProp(e, "classYear",
                     Value(static_cast<int64_t>(rng.NextRange(2000, 2022))));
    }
    if (rng.NextBool(0.7)) {
      EdgeId e = g->AddEdge(v, orgs[rng.NextZipf(n_org, 0.8)], work_at);
      g->SetEdgeProp(e, "workFrom",
                     Value(static_cast<int64_t>(rng.NextRange(2000, 2022))));
    }
    size_t n_interests = 2 + rng.NextInt(6);
    for (size_t k = 0; k < n_interests; ++k) {
      g->AddEdge(v, tags[rng.NextZipf(n_tag, 1.0)], has_interest);
    }
  }
  // KNOWS: power-law out-degree, community-biased targets, deduplicated.
  {
    std::vector<std::pair<VertexId, VertexId>> seen;
    for (size_t i = 0; i < n_person; ++i) {
      size_t d = rng.NextPowerLaw(60, 2.2) + 1;
      for (size_t k = 0; k < d; ++k) {
        // 70% local community (nearby ids), 30% global.
        size_t j;
        if (rng.NextBool(0.7)) {
          int64_t off = rng.NextRange(-30, 30);
          j = static_cast<size_t>(
              std::clamp<int64_t>(static_cast<int64_t>(i) + off, 0,
                                  static_cast<int64_t>(n_person) - 1));
        } else {
          j = rng.NextInt(n_person);
        }
        if (j == i) continue;
        EdgeId e = g->AddEdge(persons[i], persons[j], knows);
        g->SetEdgeProp(e, "creationDate",
                       Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
      }
    }
  }

  // ---- forums ----
  for (size_t i = 0; i < n_forum; ++i) {
    VertexId v = g->AddVertex(forum);
    forums.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "title", Value("forum_" + std::to_string(i)));
    g->SetVertexProp(v, "creationDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    g->AddEdge(v, persons[rng.NextInt(n_person)], has_moderator);
    size_t n_members = 3 + rng.NextPowerLaw(50, 1.9);
    for (size_t k = 0; k < n_members; ++k) {
      EdgeId e = g->AddEdge(v, persons[rng.NextInt(n_person)], has_member);
      g->SetEdgeProp(e, "joinDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    }
    size_t n_ftags = 1 + rng.NextInt(3);
    for (size_t k = 0; k < n_ftags; ++k) {
      g->AddEdge(v, tags[rng.NextZipf(n_tag, 1.0)], has_tag);
    }
  }

  // ---- posts ----
  for (size_t i = 0; i < n_post; ++i) {
    VertexId v = g->AddVertex(post);
    posts.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    int64_t len = rng.NextRange(10, 2000);
    g->SetVertexProp(v, "creationDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    g->SetVertexProp(v, "content", Value("post content " + std::to_string(i)));
    g->SetVertexProp(v, "length", Value(len));
    g->SetVertexProp(v, "browserUsed", Value(kBrowsers[rng.NextInt(5)]));
    g->SetVertexProp(v, "language", Value(kLanguages[rng.NextInt(6)]));
    g->AddEdge(forums[rng.NextZipf(n_forum, 0.9)], v, container_of);
    g->AddEdge(v, persons[rng.NextZipf(n_person, 0.8)], has_creator);
    g->AddEdge(v, places[45 + rng.NextInt(12)], located_in);
    size_t n_ptags = rng.NextInt(3);
    for (size_t k = 0; k < n_ptags; ++k) {
      g->AddEdge(v, tags[rng.NextZipf(n_tag, 1.0)], has_tag);
    }
  }

  // ---- comments (reply trees) ----
  for (size_t i = 0; i < n_comment; ++i) {
    VertexId v = g->AddVertex(comment);
    comments.push_back(v);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "creationDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    g->SetVertexProp(v, "content", Value("reply " + std::to_string(i)));
    g->SetVertexProp(v, "length", Value(static_cast<int64_t>(rng.NextRange(5, 500))));
    g->SetVertexProp(v, "browserUsed", Value(kBrowsers[rng.NextInt(5)]));
    if (i == 0 || rng.NextBool(0.6)) {
      g->AddEdge(v, posts[rng.NextZipf(n_post, 0.8)], reply_of);
    } else {
      g->AddEdge(v, comments[rng.NextInt(i)], reply_of);
    }
    g->AddEdge(v, persons[rng.NextZipf(n_person, 0.8)], has_creator);
    g->AddEdge(v, places[45 + rng.NextInt(12)], located_in);
    if (rng.NextBool(0.4)) {
      g->AddEdge(v, tags[rng.NextZipf(n_tag, 1.0)], has_tag);
    }
  }

  // ---- likes ----
  for (size_t i = 0; i < n_person; ++i) {
    size_t d = rng.NextPowerLaw(30, 2.0);
    for (size_t k = 0; k < d; ++k) {
      VertexId target = rng.NextBool(0.55)
                            ? posts[rng.NextZipf(n_post, 0.9)]
                            : comments[rng.NextZipf(n_comment, 0.9)];
      EdgeId e = g->AddEdge(persons[i], target, likes);
      g->SetEdgeProp(e, "creationDate",
                     Value(static_cast<int64_t>(rng.NextRange(20100101, 20221231))));
    }
  }

  g->Finalize();
  return LdbcGraph{g, sf};
}

GraphSchema MakePaperSchema() {
  GraphSchema s;
  using K = Value::Kind;
  TypeId person = s.AddVertexType(
      "Person", {{"id", K::kInt}, {"name", K::kString}});
  TypeId product = s.AddVertexType(
      "Product", {{"id", K::kInt}, {"name", K::kString}});
  TypeId place = s.AddVertexType(
      "Place", {{"id", K::kInt}, {"name", K::kString}});
  s.AddEdgeType("Knows", {{person, person}});
  s.AddEdgeType("Purchases", {{person, product}});
  s.AddEdgeType("LocatedIn", {{person, place}});
  s.AddEdgeType("ProducedIn", {{product, place}});
  return s;
}

FraudGraph GenerateFraud(size_t accounts, double avg_degree, uint64_t seed) {
  GraphSchema s;
  using K = Value::Kind;
  TypeId account = s.AddVertexType(
      "Account", {{"id", K::kInt}, {"balance", K::kInt}});
  TypeId transfer =
      s.AddEdgeType("TRANSFER", {{account, account}}, {{"amount", K::kInt}});
  auto g = std::make_shared<PropertyGraph>(s);
  Rng rng(seed);
  for (size_t i = 0; i < accounts; ++i) {
    VertexId v = g->AddVertex(account);
    g->SetVertexProp(v, "id", Value(static_cast<int64_t>(i)));
    g->SetVertexProp(v, "balance",
                     Value(static_cast<int64_t>(rng.NextRange(0, 1000000))));
  }
  const uint64_t max_deg =
      std::max<uint64_t>(4, static_cast<uint64_t>(avg_degree * 4));
  const uint64_t base_deg = static_cast<uint64_t>(avg_degree / 2);
  for (size_t i = 0; i < accounts; ++i) {
    size_t d = base_deg + rng.NextPowerLaw(max_deg, 2.1);
    for (size_t k = 0; k < d; ++k) {
      size_t j = rng.NextInt(accounts);
      if (j == i) continue;
      EdgeId e = g->AddEdge(i, j, transfer);
      g->SetEdgeProp(e, "amount",
                     Value(static_cast<int64_t>(rng.NextRange(1, 100000))));
    }
  }
  g->Finalize();
  return FraudGraph{g};
}

}  // namespace gopt
