#pragma once

#include <memory>

#include "src/graph/property_graph.h"

namespace gopt {

/// The LDBC SNB-like schema used by the evaluation (paper Section 8.1).
/// Vertex types: Person, Forum, Post, Comment, Place, Tag, TagClass,
/// Organisation. Edge types: KNOWS, HAS_MEMBER, HAS_MODERATOR, CONTAINER_OF,
/// HAS_CREATOR, LIKES, IS_LOCATED_IN, REPLY_OF, HAS_TAG, HAS_INTEREST,
/// HAS_TYPE, IS_SUBCLASS_OF, IS_PART_OF, STUDY_AT, WORK_AT.
GraphSchema MakeLdbcSchema();

/// A generated LDBC-like social network.
struct LdbcGraph {
  std::shared_ptr<PropertyGraph> graph;
  double scale_factor = 1.0;
};

/// Deterministically generates an SNB-flavored graph:
///  - power-law KNOWS / LIKES degrees, zipf-skewed tag & place popularity,
///  - tree-shaped comment threads (REPLY_OF),
///  - forum membership with joinDate edge properties,
///  - a shallow Place hierarchy (city -> country -> continent).
///
/// scale_factor 1.0 yields roughly 10k vertices / 90k edges; sizes grow
/// linearly. This substitutes the official LDBC datagen (laptop-scale; the
/// degree skew and schema shape drive the same optimizer effects).
LdbcGraph GenerateLdbc(double scale_factor, uint64_t seed = 42);

/// The running-example schema of the paper (Fig. 5/6): Person, Product,
/// Place; Knows (Person->Person), Purchases (Person->Product), LocatedIn
/// (Person->Place), ProducedIn (Product->Place).
GraphSchema MakePaperSchema();

/// A synthetic transfer graph for the fraud-detection case study (paper
/// Section 8.5): Account vertices, TRANSFER edges with power-law degrees.
struct FraudGraph {
  std::shared_ptr<PropertyGraph> graph;
};
FraudGraph GenerateFraud(size_t accounts, double avg_degree,
                         uint64_t seed = 7);

}  // namespace gopt
